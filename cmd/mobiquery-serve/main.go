// Command mobiquery-serve puts the mobiquery session API behind a
// streaming network front-end: it opens one Service over a configured
// sensor field and serves the internal/wire NDJSON protocol — Subscribe
// as a server-streamed response, waypoint updates as a client-streamed
// request body, plus health/stats endpoints (see internal/server for the
// endpoint table).
//
// By default the service clock runs in real time (-tick); with -tick 0
// the clock is manual and the POST /v1/advance endpoint is enabled, which
// is what the deterministic tests and smoke runs use. With -tls-self the
// server generates an in-memory self-signed certificate and serves TLS,
// over which net/http negotiates HTTP/2 — the subscribe stream then rides
// one h2 server-streamed response instead of HTTP/1.1 chunks.
//
// Shutdown is graceful: on SIGINT/SIGTERM the service drains — new
// subscribes are rejected while live streams keep delivering — for up to
// -drain-grace, then closes, which ends every stream with its end frame.
//
// Profiling is opt-in and isolated: -pprof ADDR serves net/http/pprof on
// its own listener, never on the public mux, so exposing the service
// never exposes the profiler. The pprof address is printed on its own
// line after the main listening line.
//
//	mobiquery-serve -addr 127.0.0.1:9177 -nodes 5000 -region 2000 -tick 20ms
package main

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"flag"
	"fmt"
	"math/big"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobiquery"
	"mobiquery/internal/server"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "mobiquery-serve:", err)
		os.Exit(1)
	}
}

// run stands the server up. ready, when non-nil, receives the bound
// address once listening — the tests' and spawners' synchronization
// point (the same address is printed to stdout for script consumers).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("mobiquery-serve", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:9177", "listen address (host:port, port 0 picks a free one)")
		seed    = fs.Int64("seed", 1, "field seed: node placement and sampling phases")
		nodes   = fs.Int("nodes", 200, "sensor node count")
		region  = fs.Float64("region", 450, "square field side in meters")
		sample  = fs.Duration("sample", time.Second, "node sampling period")
		shards  = fs.Int("shards", 0, "spatial shards (0 = auto)")
		workers = fs.Int("workers", 0, "dispatch workers (0 = one per core)")
		buffer  = fs.Int("buffer", 16, "per-subscription result buffer")
		tick    = fs.Duration("tick", 20*time.Millisecond, "real-time clock tick; 0 = manual clock + POST /v1/advance")
		grace   = fs.Duration("drain-grace", 5*time.Second, "drain window before a signal forces Close")
		tlsSelf = fs.Bool("tls-self", false, "serve TLS with an in-memory self-signed cert (enables HTTP/2)")
		pprofAt = fs.String("pprof", "", "serve net/http/pprof on this separate address (host:port); empty disables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	nc := mobiquery.NetworkConfig{
		Seed:         *seed,
		Nodes:        *nodes,
		RegionSide:   *region,
		SamplePeriod: *sample,
		Service:      mobiquery.ServiceConfig{Shards: *shards, Workers: *workers},
	}
	opts := []mobiquery.Option{mobiquery.WithResultBuffer(*buffer)}
	if *tick > 0 {
		opts = append(opts, mobiquery.WithRealTime(*tick))
	}
	svc, err := mobiquery.Open(context.Background(), nc, opts...)
	if err != nil {
		return err
	}
	defer svc.Close()

	handler := server.New(svc, server.Options{AllowAdvance: *tick == 0})
	httpSrv := &http.Server{Handler: handler}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	scheme := "http"
	if *tlsSelf {
		cert, err := selfSignedCert()
		if err != nil {
			return err
		}
		httpSrv.TLSConfig = &tls.Config{Certificates: []tls.Certificate{cert}}
		scheme = "https"
	}
	bound := ln.Addr().String()
	// The listening line is a contract: spawners (mobiquery-loadgen
	// -serve) parse it to find the bound port. It is printed first; the
	// pprof line, when enabled, always comes after it.
	fmt.Printf("mobiquery-serve listening on %s://%s (%d nodes over %.0f m, tick %v)\n",
		scheme, bound, *nodes, *region, *tick)
	if *pprofAt != "" {
		pprofBound, pprofSrv, err := startPprof(*pprofAt)
		if err != nil {
			return err
		}
		defer pprofSrv.Close()
		fmt.Printf("mobiquery-serve pprof listening on http://%s/debug/pprof/\n", pprofBound)
	}
	if ready != nil {
		ready <- scheme + "://" + bound
	}

	errc := make(chan error, 1)
	go func() {
		if *tlsSelf {
			errc <- httpSrv.ServeTLS(ln, "", "")
		} else {
			errc <- httpSrv.Serve(ln)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("mobiquery-serve: %v: draining (%d live subscriptions, grace %v)\n",
			s, svc.Subscribers(), *grace)
	}

	// Graceful drain: no new subscribes; live streams keep delivering
	// until their lifetimes run out or the grace window closes.
	svc.Drain()
	deadline := time.Now().Add(*grace)
	for svc.Subscribers() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	svc.Close() // ends every remaining stream with its end frame
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	st := svc.Stats()
	fmt.Printf("mobiquery-serve: closed (served %d subscriptions, %d results, %d dropped, %d late)\n",
		st.Opened, st.Delivered, st.Dropped, st.Late)
	return nil
}

// startPprof serves net/http/pprof on its own listener with an explicit
// mux — deliberately not the public server's mux and not
// http.DefaultServeMux, so nothing else ever leaks onto the profiling
// port (or the profiler onto the public one). Returns the bound address.
func startPprof(addr string) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv, nil
}

// selfSignedCert mints a throwaway ECDSA certificate for localhost use.
func selfSignedCert() (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, err
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{Organization: []string{"mobiquery-serve"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     []string{"localhost"},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, err
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}
