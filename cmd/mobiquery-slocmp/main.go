// Command mobiquery-slocmp compares two loadgen SLO reports (the
// SLO_pr.json artifact `make serve-smoke` produces, and the committed
// SLO_baseline.json) and gates the PR on service-level regressions the
// way cmd/mobiquery-benchcmp gates benchmark regressions.
//
// Three metrics are gated: steady-phase p99 subscribe latency,
// steady-phase p99 delivery lateness, and wave-phase p99 subscribe
// latency (the elasticity probe — how subscribe latency behaves while a
// resubscribe wave lands). For each, the effective baseline is
// max(recorded baseline, floor): smoke runs on shared CI runners put
// single-digit-millisecond numbers at the mercy of scheduler noise, so
// sub-floor baselines gate against the floor instead of the noise. The
// gate fails when current > effective * (1 + threshold/100); a
// threshold of zero (or below) makes the comparison informational only.
//
// A second mode, -expfmt FILE, validates a Prometheus text exposition
// (the METRICS_pr.txt artifact the smoke run scrapes) instead of
// comparing SLO reports: exit status 0 means well-formed. `make
// obs-smoke` and the CI loadgen-smoke job gate on it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mobiquery/internal/loadgen"
	"mobiquery/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobiquery-slocmp:", err)
		os.Exit(1)
	}
}

// gate is one SLO metric under threshold protection.
type gate struct {
	phase  string
	metric string // which Latency of the phase
	floor  float64
}

func (g gate) String() string { return g.phase + " " + g.metric + " p99" }

// p99 pulls the gated quantile out of a phase, reporting whether the
// phase carried any samples for it.
func (g gate) p99(p *loadgen.Phase) (float64, bool) {
	if p == nil {
		return 0, false
	}
	var l loadgen.Latency
	switch g.metric {
	case "subscribe_latency_ms":
		l = p.SubscribeLatencyMS
	case "delivery_lateness_ms":
		l = p.DeliveryLatenessMS
	}
	return l.P99, l.Count > 0
}

var gates = []gate{
	{phase: loadgen.PhaseSteady, metric: "subscribe_latency_ms"},
	{phase: loadgen.PhaseSteady, metric: "delivery_lateness_ms"},
	{phase: loadgen.PhaseWave, metric: "subscribe_latency_ms"},
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mobiquery-slocmp", flag.ContinueOnError)
	var (
		baseline      = fs.String("baseline", "SLO_baseline.json", "committed baseline SLO report")
		current       = fs.String("current", "SLO_pr.json", "freshly produced SLO report")
		threshold     = fs.Float64("threshold", 0, "fail when a gated p99 regresses beyond this percentage against the effective baseline (0 = informational only)")
		latencyFloor  = fs.Float64("latency-floor", 50, "subscribe-latency baselines below this many ms gate against the floor instead")
		latenessFloor = fs.Float64("lateness-floor", 100, "delivery-lateness baselines below this many ms gate against the floor instead")
		expfmt        = fs.String("expfmt", "", "validate this Prometheus text exposition file instead of comparing SLO reports")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *expfmt != "" {
		return validateExpfmt(*expfmt, w)
	}

	base, err := loadgen.ReadReport(*baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := loadgen.ReadReport(*current)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}

	table(w, base, cur)

	var bad []string
	for _, g := range gates {
		floor := *latencyFloor
		if g.metric == "delivery_lateness_ms" {
			floor = *latenessFloor
		}
		g.floor = floor
		if line := g.check(base, cur, *threshold); line != "" {
			bad = append(bad, line)
		}
	}
	if len(bad) != 0 {
		fmt.Fprintf(w, "\n%d SLO metric(s) regressed beyond the %.0f%% gate:\n", len(bad), *threshold)
		for _, line := range bad {
			fmt.Fprintf(w, "  %s\n", line)
		}
		return fmt.Errorf("%d SLO metric(s) regressed", len(bad))
	}
	if *threshold > 0 {
		fmt.Fprintf(w, "\nall %d gated SLO metrics within %.0f%% of the effective baseline\n", len(gates), *threshold)
	}
	return nil
}

// validateExpfmt checks a scraped /metrics artifact for exposition-format
// violations (syntax, TYPE discipline, histogram monotonicity).
func validateExpfmt(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	families, samples, err := obs.ValidateExposition(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if samples == 0 {
		return fmt.Errorf("%s: exposition carries no samples", path)
	}
	fmt.Fprintf(w, "%s: well-formed exposition, %d families, %d samples\n", path, families, samples)
	return nil
}

// check evaluates one gate; it returns a failure line or "".
func (g gate) check(base, cur *loadgen.Report, threshold float64) string {
	if threshold <= 0 {
		return ""
	}
	bv, okB := g.p99(base.Phases[g.phase])
	cv, okC := g.p99(cur.Phases[g.phase])
	if !okB {
		return "" // baseline never exercised this phase: nothing to gate on
	}
	if !okC {
		return fmt.Sprintf("%s: baseline has samples but the current run recorded none — the workload lost this phase", g)
	}
	effective := bv
	if effective < g.floor {
		effective = g.floor
	}
	if limit := effective * (1 + threshold/100); cv > limit {
		return fmt.Sprintf("%s: %.1f ms -> %.1f ms (limit %.1f ms = max(%.1f, floor %.1f) + %.0f%%)",
			g, bv, cv, limit, bv, g.floor, threshold)
	}
	return ""
}

// table prints the side-by-side phase comparison.
func table(w io.Writer, base, cur *loadgen.Report) {
	fmt.Fprintf(w, "%-30s %12s %12s %9s\n", "metric", "baseline", "current", "delta")
	row := func(name string, bv, cv float64, okB, okC bool) {
		switch {
		case !okB && !okC:
			return
		case !okB:
			fmt.Fprintf(w, "%-30s %12s %12.1f %9s\n", name, "-", cv, "new")
		case !okC:
			fmt.Fprintf(w, "%-30s %12.1f %12s %9s\n", name, bv, "-", "gone")
		default:
			delta := "~"
			if bv != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(cv-bv)/bv)
			} else if cv != 0 {
				delta = "+inf"
			}
			fmt.Fprintf(w, "%-30s %12.1f %12.1f %9s\n", name, bv, cv, delta)
		}
	}
	for _, phase := range []string{loadgen.PhaseSteady, loadgen.PhaseWave} {
		bp, cp := base.Phases[phase], cur.Phases[phase]
		for _, metric := range []string{"subscribe_latency_ms", "delivery_lateness_ms"} {
			g := gate{phase: phase, metric: metric}
			bv, okB := g.p99(bp)
			cv, okC := g.p99(cp)
			row(g.String(), bv, cv, okB, okC)
		}
	}
	row("total subs/sec", base.Totals.SubsPerSec, cur.Totals.SubsPerSec, true, true)
	row("total dropped", float64(base.Totals.Dropped), float64(cur.Totals.Dropped), true, true)
}
