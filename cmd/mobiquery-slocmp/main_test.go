package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobiquery/internal/loadgen"
)

// report builds a minimal SLO report with the given steady/wave p99s (ms).
func report(t *testing.T, dir, name string, steadyLat, steadyLate, waveLat float64) string {
	t.Helper()
	mk := func(lat, late float64) *loadgen.Phase {
		return &loadgen.Phase{
			Subscribes:         10,
			Results:            40,
			SubscribeLatencyMS: loadgen.Latency{Count: 10, P50: lat / 2, P95: lat, P99: lat, Max: lat},
			DeliveryLatenessMS: loadgen.Latency{Count: 40, P50: late / 2, P95: late, P99: late, Max: late},
		}
	}
	rep := &loadgen.Report{
		Schema: loadgen.Schema,
		Phases: map[string]*loadgen.Phase{
			loadgen.PhaseWarmup: mk(steadyLat, steadyLate),
			loadgen.PhaseSteady: mk(steadyLat, steadyLate),
		},
		Totals: loadgen.Totals{Subscribes: 20, Results: 80, SubsPerSec: 4},
	}
	if waveLat >= 0 {
		rep.Phases[loadgen.PhaseWave] = mk(waveLat, steadyLate)
	}
	path := filepath.Join(dir, name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func compare(t *testing.T, baseline, current string, extra ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	args := append([]string{"-baseline", baseline, "-current", current}, extra...)
	err := run(args, &out)
	return out.String(), err
}

func TestGatePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := report(t, dir, "base.json", 100, 200, 120)
	cur := report(t, dir, "cur.json", 150, 250, 200) // +50%/+25%/+67%, under 200%
	out, err := compare(t, base, cur, "-threshold", "200")
	if err != nil {
		t.Fatalf("gate should pass: %v\n%s", err, out)
	}
	if !strings.Contains(out, "within 200%") {
		t.Errorf("missing pass line:\n%s", out)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := report(t, dir, "base.json", 100, 200, 120)
	cur := report(t, dir, "cur.json", 400, 200, 120) // steady latency 100 -> 400 ms: +300%
	out, err := compare(t, base, cur, "-threshold", "200")
	if err == nil {
		t.Fatalf("gate should fail:\n%s", out)
	}
	if !strings.Contains(out, "steady subscribe_latency_ms p99") {
		t.Errorf("failure should name the metric:\n%s", out)
	}
	if strings.Contains(out, "delivery_lateness_ms p99:") {
		t.Errorf("lateness did not regress, should not be listed:\n%s", out)
	}
}

func TestFloorShieldsNoisySmallBaselines(t *testing.T) {
	dir := t.TempDir()
	// Baseline p99s of 1 ms are CI noise; with floors of 50/100 ms the
	// limits are 150/300 ms, so a 120 ms current run still passes.
	base := report(t, dir, "base.json", 1, 1, 1)
	cur := report(t, dir, "cur.json", 120, 250, 120)
	if out, err := compare(t, base, cur, "-threshold", "200"); err != nil {
		t.Fatalf("floor should shield tiny baselines: %v\n%s", err, out)
	}
	// Past the floored limit it still fails.
	worse := report(t, dir, "worse.json", 200, 350, 200)
	if out, err := compare(t, base, worse, "-threshold", "200"); err == nil {
		t.Fatalf("beyond the floored limit the gate should fail:\n%s", out)
	}
}

func TestImprovementAlwaysPasses(t *testing.T) {
	dir := t.TempDir()
	base := report(t, dir, "base.json", 400, 500, 400)
	cur := report(t, dir, "cur.json", 100, 120, 100)
	if out, err := compare(t, base, cur, "-threshold", "200"); err != nil {
		t.Fatalf("improvements should pass: %v\n%s", err, out)
	}
}

func TestMissingPhaseInCurrentFails(t *testing.T) {
	dir := t.TempDir()
	base := report(t, dir, "base.json", 100, 200, 120)
	cur := report(t, dir, "cur.json", 100, 200, -1) // no wave phase
	out, err := compare(t, base, cur, "-threshold", "200")
	if err == nil {
		t.Fatalf("losing a gated phase should fail:\n%s", out)
	}
	if !strings.Contains(out, "lost this phase") {
		t.Errorf("failure should explain the missing phase:\n%s", out)
	}
}

func TestMissingPhaseInBaselineIsSkipped(t *testing.T) {
	dir := t.TempDir()
	base := report(t, dir, "base.json", 100, 200, -1) // baseline never ran a wave
	cur := report(t, dir, "cur.json", 100, 200, 5000)
	if out, err := compare(t, base, cur, "-threshold", "200"); err != nil {
		t.Fatalf("a phase absent from the baseline has nothing to gate on: %v\n%s", err, out)
	}
}

func TestZeroThresholdIsInformational(t *testing.T) {
	dir := t.TempDir()
	base := report(t, dir, "base.json", 1, 1, 1)
	cur := report(t, dir, "cur.json", 9999, 9999, 9999)
	out, err := compare(t, base, cur)
	if err != nil {
		t.Fatalf("threshold 0 must never fail: %v\n%s", err, out)
	}
	if !strings.Contains(out, "steady subscribe_latency_ms p99") {
		t.Errorf("table should still print:\n%s", out)
	}
}

func TestMissingFilesAreErrors(t *testing.T) {
	dir := t.TempDir()
	ok := report(t, dir, "ok.json", 1, 1, 1)
	if _, err := compare(t, filepath.Join(dir, "absent.json"), ok); err == nil {
		t.Error("missing baseline should be an error")
	}
	if _, err := compare(t, ok, filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing current should be an error")
	}
	if err := run([]string{"-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag should be an error")
	}
}

// TestExpfmtMode pins -expfmt: a well-formed exposition passes, malformed
// or empty ones fail, and the flag bypasses report comparison entirely.
func TestExpfmtMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		return p
	}
	good := write("good.txt", `# HELP app_ops_total operations
# TYPE app_ops_total counter
app_ops_total 42
`)
	var out bytes.Buffer
	if err := run([]string{"-expfmt", good}, &out); err != nil {
		t.Fatalf("well-formed exposition rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "well-formed") {
		t.Errorf("expected a summary line:\n%s", out.String())
	}

	bad := write("bad.txt", `# TYPE app_ops_total counter
app_ops_total not-a-number
`)
	if err := run([]string{"-expfmt", bad}, &bytes.Buffer{}); err == nil {
		t.Error("malformed exposition should be an error")
	}
	empty := write("empty.txt", "")
	if err := run([]string{"-expfmt", empty}, &bytes.Buffer{}); err == nil {
		t.Error("empty exposition should be an error")
	}
	if err := run([]string{"-expfmt", filepath.Join(dir, "absent.txt")}, &bytes.Buffer{}); err == nil {
		t.Error("missing exposition file should be an error")
	}
}
