package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stream writes a minimal test2json stream with the given benchmark result
// lines and returns its path.
func stream(t *testing.T, lines ...string) string {
	t.Helper()
	var sb strings.Builder
	for _, l := range lines {
		sb.WriteString(`{"Action":"output","Package":"mobiquery","Output":"` + l + `\n"}` + "\n")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseExtractsResults(t *testing.T) {
	r, err := parse(stream(t,
		"BenchmarkAdvanceIdle-8   34044992   75.24 ns/op   0 B/op   0 allocs/op",
		"BenchmarkAdvanceDense-8   120   8.8e+06 ns/op   8900 allocs/op",
		"not a benchmark line",
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.results) != 2 {
		t.Fatalf("parsed %d results, want 2: %v", len(r.results), r.order)
	}
	if v := r.results["BenchmarkAdvanceIdle"]["ns/op"]; v != 75.24 {
		t.Errorf("AdvanceIdle ns/op = %v", v)
	}
	if v := r.results["BenchmarkAdvanceDense"]["allocs/op"]; v != 8900 {
		t.Errorf("AdvanceDense allocs/op = %v", v)
	}
}

// TestParseRejoinsSplitName covers the test2json quirk the parser exists
// for: the benchmark name flushed in one output event, metrics in the next.
func TestParseRejoinsSplitName(t *testing.T) {
	r, err := parse(stream(t,
		"BenchmarkSessionStream-8",
		"10   1.2e+08 ns/op   6000 periods/s",
	))
	if err != nil {
		t.Fatal(err)
	}
	if v := r.results["BenchmarkSessionStream"]["periods/s"]; v != 6000 {
		t.Fatalf("split-line result not rejoined: %v", r.results)
	}
}

func TestRegressionGate(t *testing.T) {
	base, err := parse(stream(t,
		"BenchmarkA-8   100   100 ns/op",
		"BenchmarkB-8   100   1000 ns/op",
		"BenchmarkGone-8   100   50 ns/op",
	))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := parse(stream(t,
		"BenchmarkA-8   100   350 ns/op",  // +250%
		"BenchmarkB-8   100   1100 ns/op", // +10%
		"BenchmarkNew-8   100   77 ns/op", // no baseline: never gated
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := regressions(base, cur, "ns/op", 0, 0); got != nil {
		t.Errorf("threshold 0 must be informational, got %v", got)
	}
	got := regressions(base, cur, "ns/op", 200, 0)
	if len(got) != 1 || !strings.Contains(got[0], "BenchmarkA") {
		t.Errorf("200%% gate = %v, want exactly BenchmarkA", got)
	}
	if got := regressions(base, cur, "ns/op", 5, 0); len(got) != 2 {
		t.Errorf("5%% gate = %v, want BenchmarkA and BenchmarkB", got)
	}
	// The noise floor exempts benchmarks too fast to time in one
	// iteration: with a 500 ns floor only BenchmarkB (1000 ns) is gated.
	if got := regressions(base, cur, "ns/op", 5, 500); len(got) != 1 || !strings.Contains(got[0], "BenchmarkB") {
		t.Errorf("floored 5%% gate = %v, want exactly BenchmarkB", got)
	}
}

// TestAllocRegressionGate pins the allocs/op gate: same threshold/floor
// semantics as ns/op, on its own unit, with its own floor exempting tiny
// baseline counts.
func TestAllocRegressionGate(t *testing.T) {
	base, err := parse(stream(t,
		"BenchmarkA-8   100   100 ns/op   5000 allocs/op",
		"BenchmarkB-8   100   100 ns/op   10 allocs/op",
		"BenchmarkC-8   100   100 ns/op   200 allocs/op",
		"BenchmarkNoAllocs-8   100   100 ns/op",
	))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := parse(stream(t,
		"BenchmarkA-8   100   100 ns/op   20000 allocs/op", // +300%
		"BenchmarkB-8   100   100 ns/op   60 allocs/op",    // +500% but tiny baseline
		"BenchmarkC-8   100   100 ns/op   210 allocs/op",   // +5%
		"BenchmarkNoAllocs-8   100   100 ns/op",
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := regressions(base, cur, "allocs/op", 0, 100); got != nil {
		t.Errorf("threshold 0 must be informational, got %v", got)
	}
	got := regressions(base, cur, "allocs/op", 200, 100)
	if len(got) != 1 || !strings.Contains(got[0], "BenchmarkA") || !strings.Contains(got[0], "allocs/op") {
		t.Errorf("alloc 200%% gate with floor 100 = %v, want exactly BenchmarkA", got)
	}
	// Dropping the floor pulls the tiny-baseline benchmark in too.
	if got := regressions(base, cur, "allocs/op", 200, 0); len(got) != 2 {
		t.Errorf("alloc 200%% gate without floor = %v, want BenchmarkA and BenchmarkB", got)
	}
	// The ns/op gate is untouched by alloc movement.
	if got := regressions(base, cur, "ns/op", 5, 0); got != nil {
		t.Errorf("ns/op gate fired on alloc-only regressions: %v", got)
	}
}
