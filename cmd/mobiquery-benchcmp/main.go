// Command mobiquery-benchcmp compares two benchmark runs recorded as
// test2json streams (the BENCH_pr.json artifact `make bench-json`
// produces, and the committed BENCH_baseline.json). It extracts the
// benchmark result lines, delegates to benchstat when that tool is on
// PATH, and otherwise prints its own old/new/delta table — so CI can
// surface Advance/EvaluateDue regressions without any dependency beyond
// the Go toolchain.
//
// The smoke pass runs every benchmark once (-benchtime=1x), so single
// deltas are noisy; the table records the perf trajectory rather than a
// statistically settled comparison. Treat large, systematic movements
// (10x on an O(1) path) as signal and small ones as noise — or install
// benchstat and raise -benchtime for real measurements.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json record shape we need.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// metrics maps unit -> value for one benchmark ("ns/op" -> 75.2, ...).
type metrics map[string]float64

// run is every benchmark result in one file, keyed by benchmark name with
// the -GOMAXPROCS suffix stripped, plus the raw result lines for
// benchstat.
type run struct {
	results map[string]metrics
	order   []string
	raw     []string
}

// parseMetrics reads the value/unit pairs of one result line ("75.24
// ns/op 0 B/op ..."). nil means the fields are not a metric list.
func parseMetrics(fields []string) metrics {
	if len(fields) == 0 || len(fields)%2 != 0 {
		return nil
	}
	m := metrics{}
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil
		}
		m[fields[i+1]] = v
	}
	return m
}

// parse extracts benchmark result lines from a test2json stream. A result
// line looks like:
//
//	BenchmarkAdvanceIdle-8   34044992   75.24 ns/op   0 B/op   0 allocs/op
//
// with any b.ReportMetric units appended in the same value/unit pairs.
// The benchmark runner prints the name before it starts measuring, so
// test2json frequently splits name and metrics into two output events —
// they are rejoined here, tracked per package since package streams may
// interleave.
func parse(path string) (*run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := &run{results: make(map[string]metrics)}
	pending := make(map[string]string) // package -> benchmark name awaiting metrics
	record := func(rawName string, m metrics, line string) {
		name := rawName
		// Strip the -GOMAXPROCS suffix (absent when GOMAXPROCS=1).
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, seen := r.results[name]; !seen {
			r.order = append(r.order, name)
		}
		r.results[name] = m
		r.raw = append(r.raw, line)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // interleaved non-JSON noise is not ours to judge
		}
		if ev.Action != "output" {
			continue
		}
		line := strings.TrimSpace(ev.Output)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case strings.HasPrefix(fields[0], "Benchmark") && len(fields) == 1:
			// Name flushed alone; metrics follow in a later event.
			pending[ev.Package] = fields[0]
		case strings.HasPrefix(fields[0], "Benchmark") && len(fields) >= 4 && len(fields)%2 == 0:
			delete(pending, ev.Package)
			if _, err := strconv.Atoi(fields[1]); err != nil {
				continue
			}
			if m := parseMetrics(fields[2:]); m != nil {
				record(fields[0], m, line)
			}
		default:
			// A bare iteration count + metrics completes a pending name.
			name, ok := pending[ev.Package]
			if !ok || len(fields) < 3 || len(fields)%2 != 1 {
				continue
			}
			if _, err := strconv.Atoi(fields[0]); err != nil {
				continue
			}
			if m := parseMetrics(fields[1:]); m != nil {
				delete(pending, ev.Package)
				record(name, m, name+"\t"+line)
			}
		}
	}
	return r, sc.Err()
}

// viaBenchstat rewrites both runs as benchmark text files and delegates
// the comparison to benchstat. Reports whether it ran.
func viaBenchstat(base, cur *run) bool {
	tool, err := exec.LookPath("benchstat")
	if err != nil {
		return false
	}
	write := func(name string, r *run) (string, error) {
		f, err := os.CreateTemp("", name)
		if err != nil {
			return "", err
		}
		defer f.Close()
		for _, line := range r.raw {
			fmt.Fprintln(f, line)
		}
		return f.Name(), nil
	}
	bp, err := write("bench-baseline-*.txt", base)
	if err != nil {
		return false
	}
	defer os.Remove(bp)
	cp, err := write("bench-current-*.txt", cur)
	if err != nil {
		return false
	}
	defer os.Remove(cp)
	cmd := exec.Command(tool, bp, cp)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	return cmd.Run() == nil
}

// headline units are listed first for readability; remaining units follow
// alphabetically.
var headline = []string{"ns/op", "B/op", "allocs/op"}

func unitRank(u string) int {
	for i, h := range headline {
		if u == h {
			return i
		}
	}
	return len(headline)
}

func table(base, cur *run) {
	const marker = 0.10 // flag deltas beyond ±10%
	fmt.Printf("%-36s %-14s %14s %14s %9s\n", "benchmark", "metric", "baseline", "current", "delta")
	names := append([]string(nil), cur.order...)
	for _, n := range base.order {
		if _, ok := cur.results[n]; !ok {
			names = append(names, n)
		}
	}
	for _, name := range names {
		b, c := base.results[name], cur.results[name]
		units := make([]string, 0, len(b)+len(c))
		for u := range c {
			units = append(units, u)
		}
		for u := range b {
			if _, ok := c[u]; !ok {
				units = append(units, u)
			}
		}
		sort.Slice(units, func(i, j int) bool {
			ri, rj := unitRank(units[i]), unitRank(units[j])
			if ri != rj {
				return ri < rj
			}
			return units[i] < units[j]
		})
		for _, u := range units {
			bv, hasB := b[u]
			cv, hasC := c[u]
			switch {
			case !hasB:
				fmt.Printf("%-36s %-14s %14s %14.4g %9s\n", name, u, "-", cv, "new")
			case !hasC:
				fmt.Printf("%-36s %-14s %14.4g %14s %9s\n", name, u, bv, "-", "gone")
			default:
				delta, flag := "~", ""
				if bv != 0 {
					d := (cv - bv) / bv
					delta = fmt.Sprintf("%+.1f%%", 100*d)
					if d > marker || d < -marker {
						flag = " *"
					}
				} else if cv != 0 {
					delta = "+inf"
					flag = " *"
				}
				fmt.Printf("%-36s %-14s %14.4g %14.4g %9s%s\n", name, u, bv, cv, delta, flag)
			}
			name = "" // print the benchmark name once per group
		}
	}
	fmt.Println("\n(single-iteration smoke numbers; * marks deltas beyond ±10%)")
}

// regressions lists the benchmarks present in both runs whose value for
// `unit` grew beyond threshold percent, formatted for the failure report.
// A threshold of zero (or below) disables the gate. Benchmarks whose
// baseline value is below floor are exempt: for ns/op a single smoke
// iteration of a microsecond-scale benchmark is dominated by timer
// granularity and cold-start effects (a one-off page fault reads as
// +1000%); for allocs/op a tiny baseline makes one incidental allocation
// read as a huge percentage. Only benchmarks with enough signal in one
// shot are gated.
func regressions(base, cur *run, unit string, threshold, floor float64) []string {
	if threshold <= 0 {
		return nil
	}
	var out []string
	for _, name := range cur.order {
		bv, okB := base.results[name][unit]
		cv, okC := cur.results[name][unit]
		if !okB || !okC || bv <= 0 {
			continue // new benchmark, or no such metric: nothing to gate on
		}
		if bv < floor {
			continue // too little baseline signal to mean anything
		}
		if d := 100 * (cv - bv) / bv; d > threshold {
			out = append(out, fmt.Sprintf("%s: %.4g -> %.4g %s (%+.1f%% > %.0f%%)", name, bv, cv, unit, d, threshold))
		}
	}
	return out
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline test2json stream")
	current := flag.String("current", "BENCH_pr.json", "freshly produced test2json stream")
	threshold := flag.Float64("threshold", 0, "fail when any benchmark's ns/op regresses beyond this percentage against the baseline (0 = informational only)")
	floor := flag.Float64("floor", 100_000, "exempt benchmarks whose baseline ns/op is below this from the threshold gate (single smoke iterations of fast benchmarks are noise)")
	allocThreshold := flag.Float64("allocthreshold", 0, "fail when any benchmark's allocs/op regresses beyond this percentage against the baseline (0 = informational only)")
	allocFloor := flag.Float64("allocfloor", 100, "exempt benchmarks whose baseline allocs/op is below this from the alloc gate (tiny counts swing hugely in percent)")
	flag.Parse()

	base, err := parse(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobiquery-benchcmp: %v\n", err)
		os.Exit(1)
	}
	cur, err := parse(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobiquery-benchcmp: %v\n", err)
		os.Exit(1)
	}
	if len(cur.results) == 0 {
		fmt.Fprintf(os.Stderr, "mobiquery-benchcmp: no benchmark results in %s\n", *current)
		os.Exit(1)
	}
	if !viaBenchstat(base, cur) {
		table(base, cur)
	}
	bad := regressions(base, cur, "ns/op", *threshold, *floor)
	bad = append(bad, regressions(base, cur, "allocs/op", *allocThreshold, *allocFloor)...)
	if len(bad) != 0 {
		fmt.Fprintf(os.Stderr, "\nmobiquery-benchcmp: %d benchmark metric(s) regressed beyond the gate (ns/op > %.0f%%, allocs/op > %.0f%%):\n",
			len(bad), *threshold, *allocThreshold)
		for _, line := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", line)
		}
		os.Exit(1)
	}
}
