package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mobiquery"
	"mobiquery/internal/loadgen"
	"mobiquery/internal/wire"
)

// span builds one well-formed joined span: monotone stamps and the
// derived span id the validator expects.
func span(trace uint64, k int, late bool) wire.ClientSpan {
	base := int64(1_000_000_000_000) + int64(k)*10_000_000
	return wire.ClientSpan{
		Sub:    7,
		SendNS: base - 5_000_000,
		AckNS:  base - 4_000_000,
		RecvNS: base + 7_000_000,
		Server: wire.TraceSpan{
			TraceID:     wire.FormatID(trace),
			SpanID:      wire.FormatID(uint64(mobiquery.MintSpanID(mobiquery.TraceID(trace), k))),
			K:           k,
			DueNS:       int64(k) * 1_000_000,
			ArmedNS:     base,
			PoppedNS:    base + 1_000_000,
			EvalStartNS: base + 2_000_000,
			EvalEndNS:   base + 3_000_000,
			FlushNS:     base + 4_000_000,
			DeliveredNS: base + 5_000_000,
			WireNS:      base + 6_000_000,
			Class:       "cold",
			Outcome:     "delivered",
			Late:        late,
		},
	}
}

// write persists a trace log and returns its path.
func write(t *testing.T, spans ...wire.ClientSpan) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "TRACE_pr.ndjson")
	log := &loadgen.TraceLog{Spans: spans}
	if err := log.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func runTool(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, &out)
	return out.String(), err
}

func TestValidLogPassesCheck(t *testing.T) {
	path := write(t, span(0xabc, 1, false), span(0xabc, 2, true), span(0xdef, 1, false))
	out, err := runTool(t, "-trace", path, "-check")
	if err != nil {
		t.Fatalf("valid log failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "all checks passed") {
		t.Errorf("missing pass line:\n%s", out)
	}
	if !strings.Contains(out, "3 spans, 2 traces") {
		t.Errorf("wrong span/trace summary:\n%s", out)
	}
	// The table names every segment and counts the late period.
	for _, seg := range []string{"sched", "dispatch", "eval", "flush", "deliver", "wire", "client"} {
		if !strings.Contains(out, seg) {
			t.Errorf("segment %q missing from table:\n%s", seg, out)
		}
	}
	if !strings.Contains(out, "(1 late)") {
		t.Errorf("late count missing:\n%s", out)
	}
}

func TestForgedSpanIDFails(t *testing.T) {
	s := span(0xabc, 1, false)
	s.Server.SpanID = wire.FormatID(12345) // not MintSpanID(trace, k)
	out, err := runTool(t, "-trace", write(t, s), "-check")
	if err == nil {
		t.Fatalf("forged span id passed:\n%s", out)
	}
	if !strings.Contains(out, "MintSpanID") {
		t.Errorf("violation not attributed to the span id:\n%s", out)
	}
}

func TestBackwardsSegmentFails(t *testing.T) {
	s := span(0xabc, 1, false)
	s.Server.EvalEndNS = s.Server.EvalStartNS - 1
	if out, err := runTool(t, "-trace", write(t, s), "-check"); err == nil {
		t.Fatalf("backwards segment passed:\n%s", out)
	}
}

func TestMissingStageFails(t *testing.T) {
	s := span(0xabc, 1, false)
	s.Server.FlushNS = 0
	if out, err := runTool(t, "-trace", write(t, s), "-check"); err == nil {
		t.Fatalf("missing flush stamp passed:\n%s", out)
	}
}

func TestDuplicateSpanFails(t *testing.T) {
	s := span(0xabc, 1, false)
	if out, err := runTool(t, "-trace", write(t, s, s), "-check"); err == nil {
		t.Fatalf("duplicate span passed:\n%s", out)
	}
}

func TestOutOfOrderPeriodsFail(t *testing.T) {
	if out, err := runTool(t, "-trace", write(t, span(0xabc, 2, false), span(0xabc, 1, false)), "-check"); err == nil {
		t.Fatalf("out-of-order periods passed:\n%s", out)
	}
}

func TestUntracedOrDroppedSpanFails(t *testing.T) {
	s := span(0xabc, 1, false)
	s.Server.TraceID, s.Server.SpanID = "", ""
	if out, err := runTool(t, "-trace", write(t, s), "-check"); err == nil {
		t.Fatalf("untraced span passed:\n%s", out)
	}
	s = span(0xabc, 1, false)
	s.Server.Outcome = "dropped"
	if out, err := runTool(t, "-trace", write(t, s), "-check"); err == nil {
		t.Fatalf("dropped echoed span passed:\n%s", out)
	}
}

func TestCheckOffStillReportsButPasses(t *testing.T) {
	s := span(0xabc, 1, false)
	s.Server.SpanID = wire.FormatID(12345)
	out, err := runTool(t, "-trace", write(t, s))
	if err != nil {
		t.Fatalf("report-only mode errored: %v", err)
	}
	if !strings.Contains(out, "INTEGRITY:") {
		t.Errorf("violation not reported:\n%s", out)
	}
}

// exposition renders a minimal valid ledger for -metrics.
func exposition(t *testing.T, cold int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "METRICS_pr.txt")
	body := "# HELP mobiquery_periods_evaluated_total periods evaluated by serve class\n" +
		"# TYPE mobiquery_periods_evaluated_total counter\n" +
		"mobiquery_periods_evaluated_total{class=\"cold\"} " + strconv.Itoa(cold) + "\n" +
		"mobiquery_periods_evaluated_total{class=\"planned\"} 0\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatalf("write exposition: %v", err)
	}
	return path
}

func TestLedgerReconciliation(t *testing.T) {
	trace := write(t, span(0xabc, 1, false), span(0xabc, 2, false))
	// Two cold spans against a ledger of 5: a subset, fine.
	if out, err := runTool(t, "-trace", trace, "-metrics", exposition(t, 5), "-check"); err != nil {
		t.Fatalf("subset reconciliation failed: %v\n%s", err, out)
	}
	// Two cold spans against a ledger of 1: more spans than evaluations.
	out, err := runTool(t, "-trace", trace, "-metrics", exposition(t, 1), "-check")
	if err == nil {
		t.Fatalf("over-count reconciliation passed:\n%s", out)
	}
	if !strings.Contains(out, "exceed the ledger") {
		t.Errorf("violation not attributed to the ledger:\n%s", out)
	}
}

func TestAttributionTableWrittenToFile(t *testing.T) {
	trace := write(t, span(0xabc, 1, true))
	out := filepath.Join(t.TempDir(), "TRACE_attrib.txt")
	if _, err := runTool(t, "-trace", trace, "-out", out, "-check"); err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read table: %v", err)
	}
	if !strings.Contains(string(b), "lateness attribution") {
		t.Errorf("table file malformed:\n%s", b)
	}
}
