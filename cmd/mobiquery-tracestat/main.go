// Command mobiquery-tracestat reads the loadgen's TRACE_pr.ndjson trace
// log (joined client+server period spans), validates span integrity, and
// prints the lateness-attribution table: where each delivered period's
// wall time went, segment by segment, across the client/wire/server/
// engine tiers.
//
// Integrity checks (all of them fail the run under -check):
//
//   - every span carries a parseable trace context, and its span id
//     equals MintSpanID(trace_id, k) — span ids are derived, not random,
//     so a mis-joined or orphaned span is detectable offline
//   - the server segment chain is monotone: armed <= popped <=
//     eval_start <= eval_end <= flush <= delivered <= wire, every stage
//     stamped
//   - the client stamps are monotone (send <= ack <= recv) and present
//   - no duplicate (trace_id, span_id); within a trace, period indices
//     strictly increase in arrival order
//   - every echoed span is a delivered one with a valid serve class
//
// With -metrics METRICS_final.txt it also reconciles the log against the
// server's /metrics ledger: the traced per-class span counts must not
// exceed mobiquery_periods_evaluated_total{class}. The subset property
// only holds against a scrape taken at-or-after the log's last span
// (use the loadgen's -metrics-final-out, not the mid-run scrape); it is
// an inequality because only every TraceEvery-th subscription is traced.
// Exact equality is pinned by the deterministic loopback test, not here.
//
// The attribution table reports p50/p95/p99 milliseconds per segment
// plus, for periods the server marked late, which segment dominated —
// turning "it was late" into "scheduling wait was the bottleneck".
//
//	mobiquery-tracestat -trace TRACE_pr.ndjson -metrics METRICS_final.txt -check
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"strconv"
	"strings"

	"mobiquery"
	"mobiquery/internal/loadgen"
	"mobiquery/internal/obs"
	"mobiquery/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobiquery-tracestat:", err)
		os.Exit(1)
	}
}

// segments is the causal decomposition of one delivered period, in chain
// order. Each is the wall time between two adjacent stamps.
var segments = []struct {
	name string
	desc string
}{
	{"sched", "armed -> popped: waiting in the due-period scheduler"},
	{"dispatch", "popped -> eval_start: waiting for a dispatch worker"},
	{"eval", "eval_start -> eval_end: engine evaluation"},
	{"flush", "eval_end -> flush: schedule re-arm flush barrier"},
	{"deliver", "flush -> delivered: delivery merge + channel send"},
	{"wire", "delivered -> wire: stream handler wake + frame encode"},
	{"client", "wire -> recv: network + client scheduling (clamped >= 0)"},
}

// segmentsOf decomposes one joined span into per-segment nanoseconds.
// The cross-clock client segment is clamped at zero: the server and
// client stamps come from different clocks (same host under the smoke
// harness, but the contract tolerates skew).
func segmentsOf(cs wire.ClientSpan) [7]int64 {
	s := cs.Server
	client := cs.RecvNS - s.WireNS
	if client < 0 {
		client = 0
	}
	return [7]int64{
		s.PoppedNS - s.ArmedNS,
		s.EvalStartNS - s.PoppedNS,
		s.EvalEndNS - s.EvalStartNS,
		s.FlushNS - s.EvalEndNS,
		s.DeliveredNS - s.FlushNS,
		s.WireNS - s.DeliveredNS,
		client,
	}
}

// validate checks one joined span's integrity, appending one message per
// violation.
func validate(i int, cs wire.ClientSpan, errs []string) []string {
	bad := func(format string, args ...any) []string {
		return append(errs, fmt.Sprintf("span %d (sub %d, k %d): %s", i, cs.Sub, cs.Server.K, fmt.Sprintf(format, args...)))
	}
	s := cs.Server
	tid, err := wire.ParseID(s.TraceID)
	if err != nil || tid == 0 {
		return bad("missing or invalid trace_id %q", s.TraceID)
	}
	sid, err := wire.ParseID(s.SpanID)
	if err != nil {
		return bad("invalid span_id %q", s.SpanID)
	}
	if want := mobiquery.MintSpanID(mobiquery.TraceID(tid), s.K); mobiquery.SpanID(sid) != want {
		return bad("span_id %s is not MintSpanID(trace, %d) = %s", s.SpanID, s.K, wire.FormatID(uint64(want)))
	}
	if _, ok := obs.ParseClass(s.Class); !ok {
		errs = bad("unknown serve class %q", s.Class)
	}
	if s.Outcome != "delivered" {
		errs = bad("outcome %q on an echoed span (only delivered periods reach the wire)", s.Outcome)
	}
	// The server chain: every stage stamped, in causal order.
	stamps := []struct {
		name string
		ns   int64
	}{
		{"armed", s.ArmedNS}, {"popped", s.PoppedNS}, {"eval_start", s.EvalStartNS},
		{"eval_end", s.EvalEndNS}, {"flush", s.FlushNS}, {"delivered", s.DeliveredNS},
		{"wire", s.WireNS},
	}
	for j, st := range stamps {
		if st.ns == 0 {
			errs = bad("stage %s never stamped", st.name)
			continue
		}
		if j > 0 && stamps[j-1].ns != 0 && st.ns < stamps[j-1].ns {
			errs = bad("segment %s -> %s runs backwards (%d > %d)", stamps[j-1].name, st.name, stamps[j-1].ns, st.ns)
		}
	}
	switch {
	case cs.SendNS == 0 || cs.AckNS == 0 || cs.RecvNS == 0:
		errs = bad("client stamps incomplete: send %d ack %d recv %d", cs.SendNS, cs.AckNS, cs.RecvNS)
	case cs.SendNS > cs.AckNS || cs.AckNS > cs.RecvNS:
		errs = bad("client stamps out of order: send %d ack %d recv %d", cs.SendNS, cs.AckNS, cs.RecvNS)
	}
	return errs
}

// ledger is the per-class evaluated totals parsed out of a /metrics
// exposition.
type ledger map[string]float64

// readLedger extracts mobiquery_periods_evaluated_total{class} samples
// from a Prometheus text exposition, validating the format first.
func readLedger(path string) (ledger, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if _, _, err := obs.ValidateExposition(strings.NewReader(string(b))); err != nil {
		return nil, fmt.Errorf("%s: invalid exposition: %w", path, err)
	}
	led := ledger{}
	const prefix = `mobiquery_periods_evaluated_total{class="`
	sc := bufio.NewScanner(strings.NewReader(string(b)))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		q := strings.Index(rest, `"`)
		sp := strings.LastIndexByte(rest, ' ')
		if q < 0 || sp < q {
			continue
		}
		v, err := strconv.ParseFloat(rest[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad sample %q", path, line)
		}
		led[rest[:q]] = v
	}
	return led, sc.Err()
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mobiquery-tracestat", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "TRACE_pr.ndjson", "trace log written by mobiquery-loadgen -trace-out")
		metrics   = fs.String("metrics", "", "reconcile per-class span counts against this /metrics exposition")
		out       = fs.String("out", "", "also write the attribution table to this file")
		check     = fs.Bool("check", false, "exit non-zero on any integrity violation (default: report only)")
		maxErrs   = fs.Int("max-errors", 20, "print at most this many integrity violations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := loadgen.ReadTraceLog(*tracePath)
	if err != nil {
		return err
	}
	if len(log.Spans) == 0 {
		return fmt.Errorf("%s: no spans — was the loadgen run traced (-trace-out/-trace-every)?", *tracePath)
	}

	// Integrity: per-span checks, then cross-span uniqueness and per-trace
	// period ordering.
	var errs []string
	type key struct {
		trace, span string
	}
	seen := make(map[key]int, len(log.Spans))
	lastK := make(map[string]int)
	classCount := map[string]int{}
	for i, cs := range log.Spans {
		errs = validate(i, cs, errs)
		k := key{cs.Server.TraceID, cs.Server.SpanID}
		if j, dup := seen[k]; dup {
			errs = append(errs, fmt.Sprintf("span %d duplicates span %d (%s/%s)", i, j, k.trace, k.span))
		}
		seen[k] = i
		if prev, ok := lastK[cs.Server.TraceID]; ok && cs.Server.K <= prev {
			errs = append(errs, fmt.Sprintf("span %d: period %d of trace %s arrived after period %d", i, cs.Server.K, cs.Server.TraceID, prev))
		}
		lastK[cs.Server.TraceID] = cs.Server.K
		classCount[cs.Server.Class]++
	}

	// Reconcile against the server ledger: traced spans are a subset of
	// evaluated periods, so each class must not exceed its counter.
	if *metrics != "" {
		led, err := readLedger(*metrics)
		if err != nil {
			return err
		}
		for class, n := range classCount {
			if float64(n) > led[class] {
				errs = append(errs, fmt.Sprintf("class %q: %d traced spans exceed the ledger's %g evaluated periods", class, n, led[class]))
			}
		}
	}

	table := attributionTable(log.Spans, classCount)
	fmt.Fprint(w, table)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(table), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *out)
	}

	if len(errs) > 0 {
		shown := errs
		if len(shown) > *maxErrs {
			shown = shown[:*maxErrs]
		}
		for _, e := range shown {
			fmt.Fprintln(w, "INTEGRITY:", e)
		}
		if len(errs) > len(shown) {
			fmt.Fprintf(w, "... and %d more\n", len(errs)-len(shown))
		}
		if *check {
			return fmt.Errorf("%d integrity violations in %d spans", len(errs), len(log.Spans))
		}
	} else {
		fmt.Fprintf(w, "integrity: %d spans, %d traces, all checks passed\n", len(log.Spans), len(lastK))
	}
	return nil
}

// attributionTable renders the per-segment latency distribution and the
// dominant segment of every late period.
func attributionTable(spans []wire.ClientSpan, classCount map[string]int) string {
	segs := make([][]float64, len(segments))
	domLate := make([]int, len(segments))
	late := 0
	for _, cs := range spans {
		parts := segmentsOf(cs)
		argmax, max := 0, int64(math.MinInt64)
		for j, ns := range parts {
			segs[j] = append(segs[j], float64(ns)/1e6)
			if ns > max {
				argmax, max = j, ns
			}
		}
		if cs.Server.Late {
			late++
			domLate[argmax]++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "lateness attribution over %d joined spans (%d late)\n", len(spans), late)
	fmt.Fprintf(&b, "%-9s %10s %10s %10s %10s %9s  %s\n", "segment", "p50 ms", "p95 ms", "p99 ms", "max ms", "dom.late", "boundary")
	for j, seg := range segments {
		q := quantiles(segs[j])
		dom := "-"
		if late > 0 {
			dom = fmt.Sprintf("%d/%d", domLate[j], late)
		}
		fmt.Fprintf(&b, "%-9s %10.3f %10.3f %10.3f %10.3f %9s  %s\n",
			seg.name, q[0], q[1], q[2], q[3], dom, seg.desc)
	}
	classes := make([]string, 0, len(classCount))
	for c := range classCount {
		classes = append(classes, c)
	}
	slices.Sort(classes)
	for _, c := range classes {
		fmt.Fprintf(&b, "class %-9s %d spans\n", c, classCount[c])
	}
	return b.String()
}

// quantiles returns nearest-rank p50/p95/p99/max of one sample set.
func quantiles(s []float64) [4]float64 {
	if len(s) == 0 {
		return [4]float64{}
	}
	s = slices.Clone(s)
	slices.Sort(s)
	pick := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return [4]float64{pick(0.50), pick(0.95), pick(0.99), s[len(s)-1]}
}
