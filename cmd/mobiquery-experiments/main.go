// Command mobiquery-experiments reproduces every figure of the paper's
// evaluation section and the warmup-bound validation.
//
// Usage:
//
//	mobiquery-experiments                 # all figures at paper scale
//	mobiquery-experiments -fig 4          # one figure
//	mobiquery-experiments -scale 0.25     # quick quarter-length sessions
//	mobiquery-experiments -runs 2         # fewer topologies per point
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobiquery/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobiquery-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobiquery-experiments", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "all", "which artifact to reproduce: 4, 5, 6, 7, 8, warmup, ablation, scale, churn, prefetch, corridor, pyramid, or all")
		runs    = fs.Int("runs", 0, "topologies per data point (0 = paper's count)")
		scale   = fs.Float64("scale", 1, "session length scale factor (1 = paper durations)")
		seed    = fs.Int64("seed", 1, "base seed")
		users   = fs.Int("users", 0, "scale scenario: concurrent users (0 = default 10k)")
		nodes   = fs.Int("nodes", 0, "scale scenario: field size in sensors (0 = default 100k)")
		shards  = fs.Int("shards", 0, "scale scenario: spatial shards (0 = auto)")
		workers = fs.Int("workers", 0, "scale scenario: dispatch workers (0 = one per core)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiment.Options{Runs: *runs, BaseSeed: *seed, Scale: *scale}

	start := time.Now()
	switch *fig {
	case "4":
		printFig4(opts)
	case "5":
		fmt.Println(experiment.Fig5(opts).Format())
	case "6":
		fmt.Println(experiment.Fig6(opts).Format())
	case "7":
		for _, tbl := range experiment.Fig7(opts) {
			fmt.Println(tbl.Format())
		}
	case "8":
		fmt.Println(experiment.Fig8(opts).Format())
	case "warmup":
		fmt.Println(experiment.WarmupValidation(opts).Format())
	case "ablation":
		fmt.Println(experiment.Ablation(opts).Format())
	case "scale":
		if err := printScale(*seed, *users, *nodes, *shards, *workers); err != nil {
			return err
		}
	case "churn":
		if err := printChurn(*seed, *users, *nodes, *shards, *workers); err != nil {
			return err
		}
	case "prefetch":
		if err := printPrefetch(*seed, *users, *nodes, *shards, *workers); err != nil {
			return err
		}
	case "corridor":
		if err := printCorridor(*seed, *users, *nodes, *shards, *workers); err != nil {
			return err
		}
	case "pyramid":
		if err := printPyramid(*seed, *users, *nodes, *shards, *workers); err != nil {
			return err
		}
	case "all":
		printFig4(opts)
		fmt.Println(experiment.Fig5(opts).Format())
		fmt.Println(experiment.Fig6(opts).Format())
		for _, tbl := range experiment.Fig7(opts) {
			fmt.Println(tbl.Format())
		}
		fmt.Println(experiment.Fig8(opts).Format())
		fmt.Println(experiment.WarmupValidation(opts).Format())
		fmt.Println(experiment.Ablation(opts).Format())
	default:
		return fmt.Errorf("unknown figure %q", *fig)
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Truncate(time.Millisecond))
	return nil
}

func printFig4(opts experiment.Options) {
	for _, tbl := range experiment.Fig4(opts) {
		fmt.Println(tbl.Format())
	}
}

// printScale runs the multi-user scale scenario twice — serial dispatch and
// sharded concurrent dispatch — and reports the speedup. Results (areas,
// aggregates) are identical between the two; only wall time moves.
func printScale(seed int64, users, nodes, shards, workers int) error {
	cfg := experiment.DefaultScale()
	cfg.Seed = seed
	if users != 0 {
		cfg.Users = users
	}
	if nodes != 0 {
		cfg.Nodes = nodes
	}
	cfg.Shards = shards
	cfg.Workers = workers
	if err := cfg.Validate(); err != nil {
		return err
	}

	fmt.Printf("scale scenario: %d users on a %d-node field (%.0f m square, Rq=%.0f m, %d rounds)\n",
		cfg.Users, cfg.Nodes, cfg.RegionSide, cfg.Radius, cfg.Rounds)

	serial := cfg
	serial.Serial = true
	sres := experiment.RunScale(serial)
	pres := experiment.RunScale(cfg)

	if sres.Checksum != pres.Checksum {
		return fmt.Errorf("serial and sharded dispatch disagree (checksums %v vs %v) — engine bug", sres.Checksum, pres.Checksum)
	}
	fmt.Printf("  serial dispatch:  %10v  (%.0f evals/s)\n", sres.Elapsed.Truncate(time.Millisecond), float64(sres.Evaluations)/sres.Elapsed.Seconds())
	fmt.Printf("  sharded dispatch: %10v  (%.0f evals/s)\n", pres.Elapsed.Truncate(time.Millisecond), float64(pres.Evaluations)/pres.Elapsed.Seconds())
	fmt.Printf("  speedup: %.2fx   mean in-area sensors: %.1f   mean value: %.3f\n",
		sres.Elapsed.Seconds()/pres.Elapsed.Seconds(), pres.MeanArea, pres.MeanValue)
	fmt.Printf("  sweep latency p50/p99: serial %v/%v, sharded %v/%v\n",
		sres.SweepP50.Truncate(time.Millisecond), sres.SweepP99.Truncate(time.Millisecond),
		pres.SweepP50.Truncate(time.Millisecond), pres.SweepP99.Truncate(time.Millisecond))
	return nil
}

// printChurn runs the dynamic-membership scenario — streaming users with
// freshness windows and deadlines, joining and leaving mid-run — twice:
// once with churners and once with the static population alone, and checks
// that churn left the static users' results untouched.
func printChurn(seed int64, users, nodes, shards, workers int) error {
	cfg := experiment.DefaultChurn()
	cfg.Seed = seed
	if users != 0 {
		cfg.Static = users
	}
	if nodes != 0 {
		cfg.Nodes = nodes
	}
	cfg.Shards = shards
	cfg.Workers = workers

	fmt.Printf("churn scenario: %d static + %d churning users on a %d-node field (%v session, Tperiod=%v, Tfresh=%v)\n",
		cfg.Static, cfg.Churners, cfg.Nodes, cfg.Duration, cfg.Period, cfg.Fresh)

	res, err := experiment.RunChurn(cfg)
	if err != nil {
		return err
	}
	alone := cfg
	alone.Churners = 0
	ref, err := experiment.RunChurn(alone)
	if err != nil {
		return err
	}
	if res.StaticDigest != ref.StaticDigest {
		return fmt.Errorf("churn perturbed the static users (digests %#x vs %#x) — engine bug", res.StaticDigest, ref.StaticDigest)
	}
	fmt.Printf("  %d evaluations (%d late, %d stale readings excluded) in %v\n",
		res.Evaluations, res.Late, res.StaleExclusions, res.Elapsed.Truncate(time.Millisecond))
	fmt.Printf("  %d joins, %d leaves, peak %d live users, %.1f fresh sensors per result\n",
		res.Joins, res.Leaves, res.PeakLive, res.MeanFresh)
	fmt.Printf("  static users' digest unchanged by churn: %#x\n", res.StaticDigest)
	return nil
}

// printPrefetch runs the strategy-comparison scenario — the same mobile
// users and sleepy sensor field evaluated on demand, with just-in-time
// prefetching, and with greedy prefetching — twice (once with swapped
// engine sizing) to verify the digests are invariant, and checks the
// headline property that prefetching reduces late periods.
func printPrefetch(seed int64, users, nodes, shards, workers int) error {
	cfg := experiment.DefaultPrefetch()
	cfg.Seed = seed
	if users != 0 {
		cfg.Users = users
	}
	if nodes != 0 {
		cfg.Nodes = nodes
	}
	cfg.Shards = shards
	cfg.Workers = workers

	fmt.Printf("prefetch scenario: %d mobile users on a %d-node field (%v session, Tperiod=%v, Tfresh=%v, duty cycle %v, tick %v)\n",
		cfg.Users, cfg.Nodes, cfg.Duration, cfg.Period, cfg.Fresh, cfg.SamplePeriod, cfg.Tick)

	res, err := experiment.RunPrefetch(cfg)
	if err != nil {
		return err
	}
	alt := cfg
	alt.Shards, alt.Workers = 1, 1
	ref, err := experiment.RunPrefetch(alt)
	if err != nil {
		return err
	}
	fmt.Printf("  %-12s %8s %8s %8s %10s %10s %9s %8s  %s\n",
		"strategy", "periods", "late", "warmup", "stale", "prefetched", "staleness", "storage", "digest")
	for i, out := range res.Outcomes() {
		if out.Digest != ref.Outcomes()[i].Digest {
			return fmt.Errorf("%v digest moved across engine sizing (%#x vs %#x) — engine bug", out.Strategy, out.Digest, ref.Outcomes()[i].Digest)
		}
		fmt.Printf("  %-12v %8d %8d %8d %10d %10d %9v %8d  %#x\n",
			out.Strategy, out.Evaluations, out.Late, out.WarmupPeriods, out.StaleExclusions,
			out.PrefetchedReadings, out.MeanStaleness.Truncate(time.Millisecond), out.PeakOutstanding, out.Digest)
	}
	if res.JIT.Late >= res.OnDemand.Late || res.Greedy.Late >= res.OnDemand.Late {
		return fmt.Errorf("prefetching did not reduce late periods (on-demand %d, jit %d, greedy %d) — planner bug",
			res.OnDemand.Late, res.JIT.Late, res.Greedy.Late)
	}
	fmt.Printf("  digests invariant to Shards/Workers; prefetching cut late periods %d -> %d (jit) / %d (greedy) in %v\n",
		res.OnDemand.Late, res.JIT.Late, res.Greedy.Late, res.Elapsed.Truncate(time.Millisecond))
	return nil
}

// printCorridor runs the corridor-comparison scenario — exact vs noisy
// motion profiles, with and without the spatial corridor cache — twice
// (once with swapped engine sizing) to verify digest invariance, checks
// that the warm path never changes results (corridor/exact matches
// jit/exact bit for bit), and reports staged-hit and mispredict rates plus
// the measured warm-vs-cold evaluation cost.
func printCorridor(seed int64, users, nodes, shards, workers int) error {
	cfg := experiment.DefaultCorridor()
	cfg.Seed = seed
	if users != 0 {
		cfg.Users = users
	}
	if nodes != 0 {
		cfg.Nodes = nodes
	}
	cfg.Shards = shards
	cfg.Workers = workers

	fmt.Printf("corridor scenario: %d turning users on a %d-node field (%v session, Tperiod=%v, duty cycle %v, GPS %v/%vm, lookahead %d)\n",
		cfg.Users, cfg.Nodes, cfg.Duration, cfg.Period, cfg.SamplePeriod, cfg.GPSSampling, cfg.GPSError, cfg.Lookahead)

	res, err := experiment.RunCorridor(cfg)
	if err != nil {
		return err
	}
	alt := cfg
	alt.Shards, alt.Workers = 1, 1
	ref, err := experiment.RunCorridor(alt)
	if err != nil {
		return err
	}
	fmt.Printf("  %-20s %8s %6s %7s %9s %10s %8s %8s %8s %8s %9s %9s  %s\n",
		"arm", "periods", "late", "warmup", "stale", "prefetched", "hits", "cold", "mispred", "replans", "warm-ns", "cold-ns", "digest")
	for i, out := range res.Arms {
		if out.Digest != ref.Arms[i].Digest {
			return fmt.Errorf("%s digest moved across engine sizing (%#x vs %#x) — engine bug", out.Label, out.Digest, ref.Arms[i].Digest)
		}
		fmt.Printf("  %-20s %8d %6d %7d %9d %10d %8d %8d %8d %8d %9.0f %9.0f  %#x\n",
			out.Label, out.Evaluations, out.Late, out.WarmupPeriods, out.StaleExclusions,
			out.PrefetchedReadings, out.StagedHits, out.ColdEvaluations, out.Mispredicts,
			out.Replans, out.WarmEvalNs, out.ColdEvalNs, out.Digest)
	}
	jitExact, _ := res.Arm("jit/exact")
	jitNoisy, _ := res.Arm("jit/noisy")
	corrExact, _ := res.Arm("jit+corridor/exact")
	corrNoisy, _ := res.Arm("jit+corridor/noisy")
	if corrExact.Digest != jitExact.Digest {
		return fmt.Errorf("corridor changed exact-profile results (%#x vs %#x) — warm path not bit-identical", corrExact.Digest, jitExact.Digest)
	}
	if corrNoisy.StagedHits == 0 || corrExact.StagedHits == 0 {
		return fmt.Errorf("corridor arms served no warm periods — staging bug")
	}
	if corrNoisy.ColdEvaluations >= jitNoisy.ColdEvaluations {
		return fmt.Errorf("corridor did not reduce cold evaluations on the noisy workload (%d vs %d)",
			corrNoisy.ColdEvaluations, jitNoisy.ColdEvaluations)
	}
	fmt.Printf("  digests invariant to Shards/Workers; corridor/exact == jit/exact (warm path bit-identical)\n")
	fmt.Printf("  noisy workload: staged-hit rate %.0f%%, mispredict rate %.1f%%, cold evaluations %d -> %d, in %v\n",
		100*corrNoisy.StagedHitRate(), 100*float64(corrNoisy.Mispredicts)/float64(corrNoisy.Evaluations),
		jitNoisy.ColdEvaluations, corrNoisy.ColdEvaluations, res.Elapsed.Truncate(time.Millisecond))
	return nil
}

// printPyramid runs the aggregate-pyramid comparison — flat area scans vs
// hierarchical tile decomposition, single-period and windowed — twice (once
// with swapped engine sizing) to verify digest invariance, checks that every
// pyramid arm reproduces its flat twin bit for bit while serving entirely
// from the pyramid, and reports the node-visit accounting: what an epoch
// ingest costs and what each decomposed serve saves over the flat scan.
func printPyramid(seed int64, users, nodes, shards, workers int) error {
	cfg := experiment.DefaultPyramid()
	cfg.Seed = seed
	if users != 0 {
		cfg.Users = users
	}
	if nodes != 0 {
		cfg.Nodes = nodes
	}
	cfg.Shards = shards
	cfg.Workers = workers

	fmt.Printf("pyramid scenario: %d users sweeping %vm disks over a %d-node field (%v session, Tperiod=%v, Tfresh=%v, window %d)\n",
		cfg.Users, cfg.Radius, cfg.Nodes, cfg.Duration, cfg.Period, cfg.Fresh, cfg.Window)

	res, err := experiment.RunPyramid(cfg)
	if err != nil {
		return err
	}
	alt := cfg
	alt.Shards, alt.Workers = 1, 1
	ref, err := experiment.RunPyramid(alt)
	if err != nil {
		return err
	}
	fmt.Printf("  %-16s %8s %6s %8s %8s %9s %8s %10s %10s %11s  %s\n",
		"arm", "periods", "late", "served", "cold", "stale", "builds", "ingested", "fringe", "area-nodes", "digest")
	for i, out := range res.Arms {
		if out.Digest != ref.Arms[i].Digest {
			return fmt.Errorf("%s digest moved across engine sizing (%#x vs %#x) — engine bug", out.Label, out.Digest, ref.Arms[i].Digest)
		}
		fmt.Printf("  %-16s %8d %6d %8d %8d %9d %8d %10d %10d %11d  %#x\n",
			out.Label, out.Evaluations, out.Late, out.PyramidServes, out.ColdEvaluations,
			out.StaleExclusions, out.Index.Builds, out.Index.NodesIngested,
			out.Index.FringeNodes, out.Index.ServedAreaNodes, out.Digest)
	}
	for _, pair := range [][2]string{{"flat", "pyramid"}, {"flat/window", "pyramid/window"}} {
		flat, _ := res.Arm(pair[0])
		pyr, _ := res.Arm(pair[1])
		if pyr.Digest != flat.Digest {
			return fmt.Errorf("%s digest %#x != %s digest %#x — pyramid serves changed observable results", pair[1], pyr.Digest, pair[0], flat.Digest)
		}
		if pyr.ColdEvaluations != 0 || pyr.PyramidServes != pyr.Evaluations {
			return fmt.Errorf("%s served %d/%d from the pyramid (%d cold) — exactness gate declined provable serves",
				pair[1], pyr.PyramidServes, pyr.Evaluations, pyr.ColdEvaluations)
		}
	}
	pyr, _ := res.Arm("pyramid")
	visits := pyr.Index.NodesIngested + pyr.Index.FringeNodes
	if visits == 0 || pyr.Index.ServedAreaNodes == 0 {
		return fmt.Errorf("pyramid ledger empty: %+v", pyr.Index)
	}
	fmt.Printf("  digests invariant to Shards/Workers; pyramid == flat bit for bit on both pairs\n")
	fmt.Printf("  pyramid arm: %d epoch builds, %.2fx node-visit advantage (%d flat-equivalent area nodes vs %d ingested+fringe), in %v\n",
		pyr.Index.Builds, float64(pyr.Index.ServedAreaNodes)/float64(visits),
		pyr.Index.ServedAreaNodes, visits, res.Elapsed.Truncate(time.Millisecond))
	return nil
}
