// Command mobiquery-experiments reproduces every figure of the paper's
// evaluation section and the warmup-bound validation.
//
// Usage:
//
//	mobiquery-experiments                 # all figures at paper scale
//	mobiquery-experiments -fig 4          # one figure
//	mobiquery-experiments -scale 0.25     # quick quarter-length sessions
//	mobiquery-experiments -runs 2         # fewer topologies per point
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobiquery/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobiquery-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobiquery-experiments", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "all", "which artifact to reproduce: 4, 5, 6, 7, 8, warmup, ablation, or all")
		runs  = fs.Int("runs", 0, "topologies per data point (0 = paper's count)")
		scale = fs.Float64("scale", 1, "session length scale factor (1 = paper durations)")
		seed  = fs.Int64("seed", 1, "base seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiment.Options{Runs: *runs, BaseSeed: *seed, Scale: *scale}

	start := time.Now()
	switch *fig {
	case "4":
		printFig4(opts)
	case "5":
		fmt.Println(experiment.Fig5(opts).Format())
	case "6":
		fmt.Println(experiment.Fig6(opts).Format())
	case "7":
		for _, tbl := range experiment.Fig7(opts) {
			fmt.Println(tbl.Format())
		}
	case "8":
		fmt.Println(experiment.Fig8(opts).Format())
	case "warmup":
		fmt.Println(experiment.WarmupValidation(opts).Format())
	case "ablation":
		fmt.Println(experiment.Ablation(opts).Format())
	case "all":
		printFig4(opts)
		fmt.Println(experiment.Fig5(opts).Format())
		fmt.Println(experiment.Fig6(opts).Format())
		for _, tbl := range experiment.Fig7(opts) {
			fmt.Println(tbl.Format())
		}
		fmt.Println(experiment.Fig8(opts).Format())
		fmt.Println(experiment.WarmupValidation(opts).Format())
		fmt.Println(experiment.Ablation(opts).Format())
	default:
		return fmt.Errorf("unknown figure %q", *fig)
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Truncate(time.Millisecond))
	return nil
}

func printFig4(opts experiment.Options) {
	for _, tbl := range experiment.Fig4(opts) {
		fmt.Println(tbl.Format())
	}
}
