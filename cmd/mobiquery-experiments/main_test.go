package main

import "testing"

func TestRunSingleFigureSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	if err := run([]string{"-fig", "warmup", "-scale", "0.2", "-runs", "1"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestRunScaleScenarioSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scale scenario")
	}
	if err := run([]string{"-fig", "scale", "-users", "200", "-nodes", "3000", "-shards", "8", "-workers", "4"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunChurnScenarioSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the churn scenario")
	}
	if err := run([]string{"-fig", "churn", "-users", "10", "-nodes", "2000"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunPrefetchScenarioSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the prefetch scenario")
	}
	if err := run([]string{"-fig", "prefetch", "-users", "10", "-nodes", "2000"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunCorridorScenarioSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the corridor scenario")
	}
	if err := run([]string{"-fig", "corridor", "-users", "10", "-nodes", "2000"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunPyramidScenarioSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pyramid scenario")
	}
	if err := run([]string{"-fig", "pyramid", "-users", "8", "-nodes", "1500"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}
