package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	if err := run([]string{"-period", "0s"}); err == nil {
		t.Error("zero period should error")
	}
}
