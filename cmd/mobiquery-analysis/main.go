// Command mobiquery-analysis prints the paper's Section 5 closed-form
// results: the just-in-time prefetch forwarding bound, the storage-cost
// comparison (the 14.5x example), the prefetch-speed estimate, the warmup
// interval, and the network-contention analysis with its v* threshold.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobiquery/internal/analysis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobiquery-analysis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobiquery-analysis", flag.ContinueOnError)
	var (
		period = fs.Duration("period", 10*time.Second, "query period Tperiod")
		fresh  = fs.Duration("fresh", 5*time.Second, "freshness bound Tfresh")
		sleep  = fs.Duration("sleep", 15*time.Second, "sleep period Tsleep")
		td     = fs.Duration("lifetime", 600*time.Second, "query lifetime Td")
		vuser  = fs.Float64("vuser", 4, "user speed m/s")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := analysis.QueryParams{Period: *period, Fresh: *fresh, Sleep: *sleep}
	if err := q.Validate(); err != nil {
		return err
	}

	fmt.Println("== Section 5.2: prefetch speed (MICA2 example) ==")
	vprfh := analysis.PrefetchSpeed(100, 5, 60, 5000)
	fmt.Printf("vprfh = %.0f m/s = %.0f mph   (paper: ~469 mph)\n\n",
		vprfh, analysis.MetersPerSecondToMPH(vprfh))

	fmt.Println("== Section 5.1: just-in-time forwarding bound (eq. 10) ==")
	for _, k := range []int{1, 2, 5, 10} {
		fmt.Printf("tsend(%d) <= t0 + %v\n", k, analysis.PrefetchForwardTime(q, k+1))
	}
	fmt.Println()

	fmt.Println("== Section 5.2: storage cost (eqs. 11-13) ==")
	plJIT := analysis.StorageJIT(q)
	plGP := analysis.StorageGreedy(q, *td, *vuser, vprfh)
	fmt.Printf("PLjit = %d trees            (paper example: 4)\n", plJIT)
	fmt.Printf("PLgp  = %d trees            (paper example: 58)\n", plGP)
	fmt.Printf("ratio = %.1fx               (paper example: 14.5x)\n", float64(plGP)/float64(plJIT))
	fmt.Printf("greedy exceeds JIT beyond Td = %v (eq. 13)\n\n",
		analysis.StorageCrossover(q, *vuser, vprfh).Truncate(100*time.Millisecond))

	fmt.Println("== Section 5.3: warmup interval (eq. 16) ==")
	for _, ta := range []time.Duration{-8 * time.Second, 0, 6 * time.Second} {
		fmt.Printf("Ta=%-4v  Tw = %v (%d periods)\n", ta,
			analysis.WarmupInterval(q, ta, *vuser, vprfh),
			analysis.WarmupPeriods(q, ta, *vuser, vprfh))
	}
	fmt.Printf("warmup vanishes at Ta = %v\n\n",
		analysis.WarmupZeroAdvance(q, *vuser, vprfh).Truncate(100*time.Millisecond))

	fmt.Println("== Section 5.4: network contention (eqs. 17-18, paper example) ==")
	c := analysis.ContentionParams{
		QueryParams: analysis.QueryParams{Period: 5 * time.Second, Fresh: 3 * time.Second, Sleep: 9 * time.Second},
		QueryRadius: 150,
		CommRange:   50,
	}
	fmt.Printf("Ms (spatial bound)    = %d trees\n", c.SpatialInterferers(4))
	fmt.Printf("Mjit                  = %d trees   (paper: ~4)\n", c.InterferenceJIT(4))
	fmt.Printf("Mgp                   = %d trees   (paper: ~35)\n", c.InterferenceGreedy(4, vprfh))
	fmt.Printf("v*                    = %.1f m/s = %.0f mph (paper: ~131 mph)\n",
		c.CriticalSpeed(), analysis.MetersPerSecondToMPH(c.CriticalSpeed()))
	fmt.Printf("regime at %.0f m/s      : %s\n", *vuser, c.ContentionRegime(*vuser, vprfh))
	return nil
}
