package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"mobiquery"
	"mobiquery/internal/loadgen"
	"mobiquery/internal/obs"
	"mobiquery/internal/server"
)

func TestRunAgainstLiveServer(t *testing.T) {
	nc := mobiquery.DefaultNetworkConfig()
	nc.Nodes = 300
	nc.SamplePeriod = 20 * time.Millisecond
	svc, err := mobiquery.Open(context.Background(), nc,
		mobiquery.WithRealTime(10*time.Millisecond), mobiquery.WithResultBuffer(64))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewServer(server.New(svc, server.Options{}))
	defer func() {
		ts.Close()
		svc.Close()
	}()

	out := filepath.Join(t.TempDir(), "SLO_pr.json")
	metrics := filepath.Join(t.TempDir(), "METRICS_pr.txt")
	args := []string{
		"-addr", ts.URL,
		"-out", out,
		"-metrics-out", metrics,
		"-workers", "3",
		"-warmup", "200ms",
		"-duration", "1s",
		"-wave-workers", "2",
		"-wave-at", "400ms",
		"-period", "50ms",
		"-deadline", "40ms",
		"-fresh", "50ms",
		"-lifetime", "200ms",
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
	// The mid-run scrape was validated and captured live traffic.
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}
	if _, _, err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
		t.Fatalf("metrics artifact invalid: %v", err)
	}
	if !bytes.Contains(raw, []byte("mobiquery_results_delivered_total")) {
		t.Error("metrics artifact missing the delivery ledger")
	}
	rep, err := loadgen.ReadReport(out)
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if rep.Phases[loadgen.PhaseSteady].Subscribes == 0 {
		t.Fatalf("steady phase saw no traffic: %+v", rep.Phases[loadgen.PhaseSteady])
	}
	if rep.Totals.SubsPerSec <= 0 {
		t.Errorf("sustained rate %v, want positive", rep.Totals.SubsPerSec)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("artifact missing: %v", err)
	}
}

func TestRunRejectsBadInvocation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("neither -addr nor -serve should be an error")
	}
	if err := run([]string{"-addr", "http://x", "-serve", "bin/serve"}); err == nil {
		t.Error("both -addr and -serve should be an error")
	}
	if err := run([]string{"-addr", "http://x", "-workers", "0"}); err == nil {
		t.Error("invalid workload config should be an error")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("unknown flag should be an error")
	}
}

func TestParseListeningLine(t *testing.T) {
	cases := []struct {
		line, want string
	}{
		{"mobiquery-serve listening on http://127.0.0.1:41231 (200 nodes over 450 m, tick 20ms)", "http://127.0.0.1:41231"},
		{"mobiquery-serve listening on https://127.0.0.1:9177 (5000 nodes over 2000 m, tick 1s)", "https://127.0.0.1:9177"},
		{"some unrelated log line", ""},
		{"mobiquery-serve listening on tcp:whatever", ""},
		// The pprof banner matches the marker but is never the public
		// address.
		{"mobiquery-serve pprof listening on http://127.0.0.1:6060/debug/pprof/", ""},
	}
	for _, c := range cases {
		if got := parseListeningLine(c.line); got != c.want {
			t.Errorf("parseListeningLine(%q) = %q, want %q", c.line, got, c.want)
		}
	}
}

// TestSpawnMode builds the serve binary and exercises the -serve flow:
// spawn, parse the listening line, run a short workload, SIGTERM.
func TestSpawnMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short")
	}
	bin := buildServe(t)
	out := filepath.Join(t.TempDir(), "SLO_pr.json")
	args := []string{
		"-serve", bin,
		"-out", out,
		"-nodes", "300",
		"-tick", "10ms",
		"-workers", "3",
		"-warmup", "200ms",
		"-duration", "1s",
		"-wave-workers", "0",
		"-period", "50ms",
		"-deadline", "40ms",
		"-fresh", "50ms",
		"-lifetime", "200ms",
	}
	if err := run(args); err != nil {
		t.Fatalf("run -serve: %v", err)
	}
	if _, err := loadgen.ReadReport(out); err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
}

func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mobiquery-serve")
	cmd := exec.Command("go", "build", "-o", bin, "mobiquery/cmd/mobiquery-serve")
	if outb, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build serve: %v\n%s", err, outb)
	}
	return bin
}
