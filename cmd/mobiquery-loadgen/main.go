// Command mobiquery-loadgen drives a mobiquery-serve front-end with a
// seeded closed- or open-loop subscriber workload and writes the SLO
// report (subscribe-latency / delivery-lateness percentiles per phase,
// drop counts, sustained subscriptions/sec) as machine-readable JSON —
// the SLO_pr.json artifact CI trends and cmd/mobiquery-slocmp gates.
//
// Point it at a running server with -addr, or let it spawn one with
// -serve (the path to a mobiquery-serve binary): the spawned server gets
// a free port, field flags mirroring the workload (-nodes/-region/-seed),
// and a SIGTERM when the run ends.
//
//	mobiquery-loadgen -addr http://127.0.0.1:9177 -workers 16 -duration 10s
//	mobiquery-loadgen -serve bin/mobiquery-serve -out SLO_pr.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"mobiquery/internal/loadgen"
	"mobiquery/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobiquery-loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobiquery-loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "server base URL (http://host:port); empty with -serve spawns one")
		serveBin = fs.String("serve", "", "path to a mobiquery-serve binary to spawn for the run")
		out      = fs.String("out", "SLO_pr.json", "report output path ('-' for stdout only)")
		workers  = fs.Int("workers", 8, "closed-loop workers (open loop: spawner count)")
		openLoop = fs.Bool("open-loop", false, "open-loop arrivals instead of closed-loop workers")
		rate     = fs.Float64("rate", 50, "open-loop arrival rate, subscriptions/sec")
		warmup   = fs.Duration("warmup", time.Second, "warmup window excluded from steady percentiles")
		duration = fs.Duration("duration", 5*time.Second, "measured window after warmup")
		waveN    = fs.Int("wave-workers", 8, "elasticity wave size (0 disables the wave)")
		waveAt   = fs.Duration("wave-at", 2*time.Second, "wave start, measured from the steady window opening")
		seed     = fs.Int64("seed", 1, "workload seed (query fields and motion)")
		period   = fs.Duration("period", 200*time.Millisecond, "query period")
		deadline = fs.Duration("deadline", 100*time.Millisecond, "deadline slack")
		fresh    = fs.Duration("fresh", 200*time.Millisecond, "freshness window")
		lifetime = fs.Duration("lifetime", time.Second, "subscription lifetime (periods per subscribe)")
		rMin     = fs.Float64("radius-min", 100, "minimum query radius, meters")
		rMax     = fs.Float64("radius-max", 180, "maximum query radius, meters")
		region   = fs.Float64("region", 450, "field side, meters (must match the server)")
		jitN     = fs.Int("jit-every", 4, "every Nth subscription prefetches with JIT (0 = never)")
		courseN  = fs.Int("course-every", 5, "every Nth subscription rides a GPS course (0 = never)")
		largeR   = fs.Float64("large-radius", 0, "radius for large aggregate queries, meters (0 disables them)")
		largeN   = fs.Int("large-every", 16, "every Nth subscription uses -large-radius (on-demand, pyramid-served)")
		nodes    = fs.Int("nodes", 2000, "spawned server: sensor node count")
		tick     = fs.Duration("tick", 20*time.Millisecond, "spawned server: real-time clock tick")
		metrOut  = fs.String("metrics-out", "", "scrape BASE/metrics mid-run, validate the exposition, and write it to this file")
		metrFin  = fs.String("metrics-final-out", "", "scrape BASE/metrics after the run drains and write it to this file (the ledger mobiquery-tracestat reconciles the trace log against: counters as of after the last span)")
		traceOut = fs.String("trace-out", "", "write the joined client+server trace log (NDJSON) to this file")
		traceN   = fs.Int("trace-every", 2, "every Nth subscription carries a trace context (with -trace-out; 0 = never)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*addr == "") == (*serveBin == "") {
		return fmt.Errorf("exactly one of -addr and -serve must be set")
	}

	base := *addr
	if *serveBin != "" {
		stop, spawned, err := spawnServe(*serveBin, *nodes, *region, *seed, *tick)
		if err != nil {
			return err
		}
		defer stop()
		base = spawned
	}

	cfg := loadgen.Config{
		Addr:        base,
		Workers:     *workers,
		OpenLoop:    *openLoop,
		Rate:        *rate,
		Warmup:      *warmup,
		Duration:    *duration,
		WaveWorkers: *waveN,
		WaveAt:      *waveAt,
		Seed:        *seed,
		Period:      *period,
		Deadline:    *deadline,
		Freshness:   *fresh,
		Lifetime:    *lifetime,
		RadiusMin:   *rMin,
		RadiusMax:   *rMax,
		Region:      *region,
		JITEvery:    *jitN,
		CourseEvery: *courseN,
		LargeRadius: *largeR,
	}
	if *largeR > 0 {
		cfg.LargeEvery = *largeN
	}
	if *traceOut != "" {
		cfg.TraceEvery = *traceN
	}
	if err := loadgen.WaitReady(http.DefaultClient, base, 10*time.Second); err != nil {
		return err
	}
	// Scrape /metrics in the middle of the measured window, while the
	// workload is actually on the wire, not after it has drained.
	var scrapec chan scrape
	if *metrOut != "" {
		scrapec = make(chan scrape, 1)
		go func() {
			time.Sleep(*warmup + *duration/2)
			scrapec <- scrapeMetrics(base)
		}()
	}
	rep, traces, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	printSummary(rep)
	if scrapec != nil {
		sc := <-scrapec
		if sc.err != nil {
			return fmt.Errorf("mid-run metrics scrape: %w", sc.err)
		}
		if err := os.WriteFile(*metrOut, sc.body, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d families, %d samples)\n", *metrOut, sc.families, sc.samples)
	}
	// The final scrape happens after Run has drained every stream, so its
	// counters cover every span in the trace log — the mid-run scrape
	// above cannot (counters keep advancing after it), which is why trace
	// reconciliation gets its own exposition.
	if *metrFin != "" {
		sc := scrapeMetrics(base)
		if sc.err != nil {
			return fmt.Errorf("final metrics scrape: %w", sc.err)
		}
		if err := os.WriteFile(*metrFin, sc.body, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d families, %d samples)\n", *metrFin, sc.families, sc.samples)
	}
	if *out != "-" {
		if err := rep.WriteFile(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *traceOut != "" {
		if err := traces.WriteFile(*traceOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d spans)\n", *traceOut, len(traces.Spans))
		if cfg.TraceEvery > 0 && len(traces.Spans) == 0 {
			return fmt.Errorf("traced run produced no spans — tracing is broken end to end")
		}
	}
	if rep.Totals.Errors > 0 {
		return fmt.Errorf("%d subscribe errors during the run", rep.Totals.Errors)
	}
	if rep.Phases[loadgen.PhaseSteady].Subscribes == 0 {
		return fmt.Errorf("steady phase completed no subscriptions — run too short for lifetime %v", *lifetime)
	}
	return nil
}

// scrape is one validated /metrics fetch.
type scrape struct {
	body              []byte
	families, samples int
	err               error
}

// scrapeMetrics GETs base/metrics and validates the exposition format, so
// a malformed exposition fails the run rather than shipping as a healthy
// looking artifact. The fetch is bounded so a wedged server fails the run
// with a scrape error instead of hanging it (run blocks on the scrape
// result after the load phases finish).
func scrapeMetrics(base string) scrape {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return scrape{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return scrape{err: fmt.Errorf("GET /metrics: status %d", resp.StatusCode)}
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return scrape{err: err}
	}
	families, samples, err := obs.ValidateExposition(bytes.NewReader(body))
	if err != nil {
		return scrape{err: fmt.Errorf("invalid exposition: %w", err)}
	}
	return scrape{body: body, families: families, samples: samples}
}

// spawnServe launches a mobiquery-serve binary on a free port and parses
// the bound address from its listening line.
func spawnServe(bin string, nodes int, region float64, seed int64, tick time.Duration) (stop func(), base string, err error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-nodes", fmt.Sprint(nodes),
		"-region", fmt.Sprint(region),
		"-seed", fmt.Sprint(seed),
		"-tick", tick.String(),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	stop = func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	// The listening line is the spawn contract: "... listening on URL ...".
	sc := bufio.NewScanner(stdout)
	linec := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			select {
			case linec <- line:
			default:
			}
			fmt.Println(line) // keep the server log visible
		}
	}()
	select {
	case line := <-linec:
		base = parseListeningLine(line)
		if base == "" {
			stop()
			return nil, "", fmt.Errorf("cannot parse serve address from %q", line)
		}
		return stop, base, nil
	case <-time.After(10 * time.Second):
		stop()
		return nil, "", fmt.Errorf("spawned server never printed its listening line")
	}
}

// parseListeningLine extracts the base URL from the serve banner. The
// pprof banner ("mobiquery-serve pprof listening on ...") also matches
// the marker; it is never the public address, so it never parses.
func parseListeningLine(line string) string {
	const marker = " listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		return ""
	}
	if strings.Contains(line[:i], "pprof") {
		return ""
	}
	rest := line[i+len(marker):]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	if !strings.HasPrefix(rest, "http") {
		return ""
	}
	return rest
}

// printSummary renders the human-facing SLO table.
func printSummary(rep *loadgen.Report) {
	fmt.Printf("%-8s %10s %8s %6s %8s %28s %28s\n",
		"phase", "subscribes", "results", "late", "dropped", "subscribe p50/p95/p99 ms", "lateness p50/p95/p99 ms")
	for _, name := range []string{loadgen.PhaseWarmup, loadgen.PhaseSteady, loadgen.PhaseWave} {
		p := rep.Phases[name]
		if p == nil || (p.Subscribes == 0 && p.Errors == 0) {
			continue
		}
		fmt.Printf("%-8s %10d %8d %6d %8d %28s %28s\n",
			name, p.Subscribes, p.Results, p.Late, p.Dropped,
			fmtPcts(p.SubscribeLatencyMS), fmtPcts(p.DeliveryLatenessMS))
	}
	fmt.Printf("sustained: %.1f subscriptions/sec, %d results, %d errors\n",
		rep.Totals.SubsPerSec, rep.Totals.Results, rep.Totals.Errors)
}

func fmtPcts(l loadgen.Latency) string {
	if l.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f/%.1f/%.1f", l.P50, l.P95, l.P99)
}
