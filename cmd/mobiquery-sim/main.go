// Command mobiquery-sim runs a single MobiQuery simulation and prints
// per-period outcomes plus run-level summaries.
//
// Usage:
//
//	mobiquery-sim -scheme jit -sleep 15s -speed-min 3 -speed-max 5 -duration 400s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobiquery"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobiquery-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobiquery-sim", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "simulation seed")
		scheme   = fs.String("scheme", "jit", "prefetching scheme: jit, gp, or np")
		nodes    = fs.Int("nodes", 200, "sensor node count")
		region   = fs.Float64("region", 450, "square field side in meters")
		sleep    = fs.Duration("sleep", 15*time.Second, "PSM sleep period")
		radius   = fs.Float64("radius", 150, "query radius Rq in meters")
		period   = fs.Duration("period", 2*time.Second, "query period")
		fresh    = fs.Duration("fresh", time.Second, "data freshness bound")
		speedMin = fs.Float64("speed-min", 3, "minimum user speed m/s")
		speedMax = fs.Float64("speed-max", 5, "maximum user speed m/s")
		change   = fs.Duration("change", 50*time.Second, "motion change interval")
		duration = fs.Duration("duration", 400*time.Second, "session duration")
		profiler = fs.String("profiler", "oracle", "motion profiler: oracle, planner, gps")
		ta       = fs.Duration("ta", 0, "advance time Ta for the planner profiler")
		gpsErr   = fs.Float64("gps-error", 0, "GPS location error in meters")
		verbose  = fs.Bool("v", false, "print every query period")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sim := mobiquery.DefaultSimulation()
	sim.Seed = *seed
	sim.Nodes = *nodes
	sim.RegionSide = *region
	sim.SleepPeriod = *sleep
	sim.QueryRadius = *radius
	sim.Period = *period
	sim.Freshness = *fresh
	sim.SpeedMin = *speedMin
	sim.SpeedMax = *speedMax
	sim.ChangeInterval = *change
	sim.Duration = *duration
	sim.Lifetime = *duration - 4*time.Second
	sim.AdvanceTime = *ta
	sim.GPSError = *gpsErr

	switch *scheme {
	case "jit":
		sim.Scheme = mobiquery.JIT
	case "gp":
		sim.Scheme = mobiquery.GP
	case "np":
		sim.Scheme = mobiquery.NP
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	switch *profiler {
	case "oracle":
		sim.Profiler = mobiquery.Oracle
	case "planner":
		sim.Profiler = mobiquery.Planner
	case "gps":
		sim.Profiler = mobiquery.GPSPredictor
	default:
		return fmt.Errorf("unknown profiler %q", *profiler)
	}
	if err := sim.Validate(); err != nil {
		return err
	}

	res := mobiquery.Run(sim)
	if *verbose {
		fmt.Println("  k   deadline  recv  onTime  fidelity  contrib/area  value")
		for _, q := range res.Queries {
			fmt.Printf("%3d  %8s  %5v  %6v  %8.3f  %6d/%-5d  %.2f\n",
				q.K, q.Deadline.Truncate(10*time.Millisecond), q.Received, q.OnTime,
				q.Fidelity, q.Contributors, q.AreaNodes, q.Value)
		}
	}
	fmt.Printf("scheme            %v\n", sim.Scheme)
	fmt.Printf("periods           %d\n", len(res.Queries))
	fmt.Printf("success ratio     %.3f (fidelity >= %.0f%% and on time)\n", res.SuccessRatio, mobiquery.SuccessThreshold*100)
	fmt.Printf("mean fidelity     %.3f\n", res.MeanFidelity)
	fmt.Printf("backbone nodes    %d of %d\n", res.BackboneNodes, sim.Nodes)
	fmt.Printf("power sleeping    %.3f W\n", res.PowerPerSleepingNode)
	fmt.Printf("power backbone    %.3f W\n", res.PowerPerBackboneNode)
	fmt.Printf("prefetch length   %d trees ahead (eq.12 bound %d)\n",
		res.MaxPrefetchLength, mobiquery.JITStorageBound(sim.SleepPeriod, sim.Freshness, sim.Period))
	return nil
}
