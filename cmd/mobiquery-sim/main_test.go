package main

import "testing"

func TestRunSmallScenario(t *testing.T) {
	err := run([]string{"-duration", "60s", "-sleep", "3s", "-scheme", "jit", "-v"})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunRejectsBadScheme(t *testing.T) {
	if err := run([]string{"-scheme", "bogus"}); err == nil {
		t.Error("bad scheme should error")
	}
}

func TestRunRejectsBadProfiler(t *testing.T) {
	if err := run([]string{"-profiler", "bogus"}); err == nil {
		t.Error("bad profiler should error")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-fresh", "10s", "-period", "2s"}); err == nil {
		t.Error("freshness above period should error")
	}
}
