module mobiquery

go 1.23
