module mobiquery

go 1.24
