# Same entry points CI uses (.github/workflows/ci.yml); run `make check`
# before sending a PR.

GO ?= go

.PHONY: all build test race bench bench-json bench-compare fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark as a smoke test; use `go test -bench=. ./...`
# directly for real measurements.
bench:
	$(GO) test -run=xxx -bench=. -benchtime=1x ./...

# The same pass as a machine-readable test2json stream; CI uploads the
# result as the BENCH_pr.json artifact to record the perf trajectory.
bench-json:
	$(GO) test -json -run=xxx -bench=. -benchtime=1x ./... > BENCH_pr.json

# Compare the fresh BENCH_pr.json against the committed baseline, so
# regressions on the hot paths (Advance, EvaluateDue, dispatch) are
# visible per PR. Uses benchstat when installed, else the built-in table.
bench-compare: bench-json
	$(GO) run ./cmd/mobiquery-benchcmp -baseline BENCH_baseline.json -current BENCH_pr.json

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: build fmt vet test race bench
