# Same entry points CI uses (.github/workflows/ci.yml); run `make check`
# before sending a PR.

GO ?= go

.PHONY: all build test race bench bench-json bench-compare bench-idle-1m serve-smoke slo-compare obs-smoke trace-smoke fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark as a smoke test; use `go test -bench=. ./...`
# directly for real measurements.
bench:
	$(GO) test -run=xxx -bench=. -benchtime=1x ./...

# The same pass as a machine-readable test2json stream; CI uploads the
# result as the BENCH_pr.json artifact to record the perf trajectory.
bench-json:
	$(GO) test -json -run=xxx -bench=. -benchtime=1x ./... > BENCH_pr.json

# Compare the fresh BENCH_pr.json against the committed baseline, so
# regressions on the hot paths (Advance, EvaluateDue, dispatch) are
# visible per PR. Uses benchstat when installed, else the built-in table.
# BENCH_THRESHOLD > 0 turns the comparison into a gate: exit non-zero when
# any benchmark's ns/op regresses beyond that percentage (200 is wide
# enough for single-iteration smoke noise but fails on order-of-magnitude
# breaks of the scenario paths; sub-100µs benchmarks are exempt via the
# tool's -floor, since one smoke iteration of those is pure noise).
# BENCH_ALLOC_THRESHOLD gates allocs/op the same way (benchmarks under 100
# baseline allocs/op are exempt via -allocfloor — tiny counts swing hugely
# in percent). The defaults match CI so `make check` means what CI means;
# set either to 0 for an informational-only comparison.
BENCH_THRESHOLD ?= 200
BENCH_ALLOC_THRESHOLD ?= 200
bench-compare: bench-json
	$(GO) run ./cmd/mobiquery-benchcmp -baseline BENCH_baseline.json -current BENCH_pr.json -threshold $(BENCH_THRESHOLD) -allocthreshold $(BENCH_ALLOC_THRESHOLD)

# The million-subscriber idle gate on its own: one pass of the idle arm of
# BenchmarkAdvance1M, which b.Fatals if the timed loop allocates at all.
# bench-compare's -allocfloor exempts near-zero baselines, so this — not
# the threshold comparison — is what holds the 0-alloc idle invariant.
bench-idle-1m:
	$(GO) test -run=xxx -bench='^BenchmarkAdvance1M$$/^Idle$$' -benchtime=1x .

# Build the network front-end and drive it with a short seeded workload;
# writes the SLO_pr.json artifact CI uploads and slo-compare gates,
# METRICS_pr.txt — a mid-run /metrics scrape, validated in-process and
# again by obs-smoke — and TRACE_pr.ndjson, the joined client+server trace
# log trace-smoke validates. The parameters mirror the CI smoke job: small
# field, sub-second periods, an elasticity wave landing mid-run, every
# second subscription traced.
serve-smoke:
	$(GO) build -o bin/mobiquery-serve ./cmd/mobiquery-serve
	$(GO) run ./cmd/mobiquery-loadgen -serve bin/mobiquery-serve -out SLO_pr.json \
		-metrics-out METRICS_pr.txt -metrics-final-out METRICS_final.txt \
		-trace-out TRACE_pr.ndjson -trace-every 2 \
		-nodes 2000 -tick 20ms -workers 8 -warmup 1s -duration 6s \
		-wave-workers 8 -wave-at 3s -period 200ms -deadline 100ms \
		-fresh 200ms -lifetime 1s -jit-every 4 -course-every 5 \
		-large-radius 200 -large-every 16

# Compare the fresh SLO_pr.json against the committed SLO_baseline.json.
# SLO_THRESHOLD > 0 gates three p99s — steady subscribe latency, steady
# delivery lateness, wave subscribe latency — failing beyond that
# percentage over max(baseline, floor); the floors absorb shared-runner
# scheduler noise on millisecond-scale baselines. The default matches CI.
SLO_THRESHOLD ?= 200
slo-compare: serve-smoke
	$(GO) run ./cmd/mobiquery-slocmp -baseline SLO_baseline.json -current SLO_pr.json -threshold $(SLO_THRESHOLD)

# Validate the mid-run /metrics scrape serve-smoke wrote: exposition
# syntax, TYPE discipline, histogram monotonicity. Fails on a malformed
# or empty exposition — the CI loadgen-smoke job runs this before
# uploading METRICS_pr.txt.
obs-smoke: serve-smoke
	$(GO) run ./cmd/mobiquery-slocmp -expfmt METRICS_pr.txt

# Validate the trace log serve-smoke wrote and render the lateness
# attribution table: span-id derivation, monotone segment chains, no
# duplicates, and per-class traced counts reconciled against the
# END-of-run /metrics ledger (the mid-run METRICS_pr.txt scrape predates
# the log's later spans, so only the final scrape's counters cover every
# span). -check makes any integrity violation fail the build;
# TRACE_attrib.txt is the CI artifact.
trace-smoke: serve-smoke
	$(GO) run ./cmd/mobiquery-tracestat -trace TRACE_pr.ndjson \
		-metrics METRICS_final.txt -out TRACE_attrib.txt -check

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# serve-smoke is a prerequisite of slo-compare, obs-smoke, and
# trace-smoke; make runs it once per invocation, so check drives one
# smoke run and gates all three artifacts off it.
check: build fmt vet test race bench-compare slo-compare obs-smoke trace-smoke
