# Same entry points CI uses (.github/workflows/ci.yml); run `make check`
# before sending a PR.

GO ?= go

.PHONY: all build test race bench bench-json bench-compare fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark as a smoke test; use `go test -bench=. ./...`
# directly for real measurements.
bench:
	$(GO) test -run=xxx -bench=. -benchtime=1x ./...

# The same pass as a machine-readable test2json stream; CI uploads the
# result as the BENCH_pr.json artifact to record the perf trajectory.
bench-json:
	$(GO) test -json -run=xxx -bench=. -benchtime=1x ./... > BENCH_pr.json

# Compare the fresh BENCH_pr.json against the committed baseline, so
# regressions on the hot paths (Advance, EvaluateDue, dispatch) are
# visible per PR. Uses benchstat when installed, else the built-in table.
# BENCH_THRESHOLD > 0 turns the comparison into a gate: exit non-zero when
# any benchmark's ns/op regresses beyond that percentage (CI uses 200, wide
# enough for single-iteration smoke noise but failing on order-of-magnitude
# breaks of the scenario paths; sub-100µs benchmarks are exempt via the
# tool's -floor, since one smoke iteration of those is pure noise).
# BENCH_ALLOC_THRESHOLD gates allocs/op the same way (CI uses 200;
# benchmarks under 100 baseline allocs/op are exempt via -allocfloor —
# tiny counts swing hugely in percent). The defaults of 0 are
# informational only.
BENCH_THRESHOLD ?= 0
BENCH_ALLOC_THRESHOLD ?= 0
bench-compare: bench-json
	$(GO) run ./cmd/mobiquery-benchcmp -baseline BENCH_baseline.json -current BENCH_pr.json -threshold $(BENCH_THRESHOLD) -allocthreshold $(BENCH_ALLOC_THRESHOLD)

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: build fmt vet test race bench
