# Same entry points CI uses (.github/workflows/ci.yml); run `make check`
# before sending a PR.

GO ?= go

.PHONY: all build test race bench fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark as a smoke test; use `go test -bench=. ./...`
# directly for real measurements.
bench:
	$(GO) test -run=xxx -bench=. -benchtime=1x ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: build fmt vet test race bench
