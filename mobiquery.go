// Package mobiquery is a library reproduction of "A Spatiotemporal Query
// Service for Mobile Users in Sensor Networks" (Lu, Xing, Chipara, Fok,
// Bhattacharya; ICDCS 2005).
//
// MobiQuery lets a mobile user periodically pull aggregated sensor readings
// from a circular area around their current position, with per-period
// deadlines and data-freshness guarantees, while sensor nodes run extremely
// low duty cycles. Its core idea is just-in-time prefetching: the query is
// relayed between "pickup points" along the user's predicted path and held
// at each hop until the latest safe moment (the paper's equation 10), so
// sleeping nodes wake exactly when their readings are needed.
//
// The package wraps a complete discrete-event reproduction of the paper's
// stack — radio medium, CSMA/PSM link layer, CCP coverage backbone,
// geographic routing, motion prediction, and the MobiQuery protocol — behind
// a small configuration API:
//
//	cfg := mobiquery.DefaultSimulation()
//	cfg.SleepPeriod = 15 * time.Second
//	result := mobiquery.Run(cfg)
//	fmt.Println(result.SuccessRatio)
//
// For reproducing the paper's figures, see internal/experiment via the
// cmd/mobiquery-experiments binary; for the closed-form Section 5 analysis,
// see cmd/mobiquery-analysis.
package mobiquery

import (
	"time"

	"mobiquery/internal/analysis"
	"mobiquery/internal/core"
	"mobiquery/internal/experiment"
	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/metrics"
)

// Scheme selects the prefetching strategy.
type Scheme = core.Scheme

// Available schemes: just-in-time prefetching (the paper's contribution),
// greedy prefetching, and the no-prefetching baseline.
const (
	JIT = core.SchemeJIT
	GP  = core.SchemeGP
	NP  = core.SchemeNP
)

// Profiler selects how motion profiles are produced.
type Profiler = experiment.ProfilerKind

// Available profilers: an oracle (exact full path at t=0), a planner-style
// exact profiler with configurable advance time, and a history-based GPS
// predictor with location error.
const (
	Oracle       = experiment.ProfilerOracle
	Planner      = experiment.ProfilerExact
	GPSPredictor = experiment.ProfilerGPS
)

// Aggregation functions for query results.
const (
	Count = core.AggCount
	Sum   = core.AggSum
	Min   = core.AggMin
	Max   = core.AggMax
	Avg   = core.AggAvg
)

// Field is a scalar sensor field sampled by the nodes.
type Field = field.Field

// Point is a 2-D location in meters.
type Point = geom.Point

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// UniformField returns a constant sensor field.
func UniformField(v float64) Field { return field.Uniform{Value: v} }

// GradientField returns a planar ramp field.
func GradientField(base float64, slopeX, slopeY float64) Field {
	return field.Gradient{Base: base, Slope: geom.V(slopeX, slopeY)}
}

// PlumeField returns a Gaussian hot spot drifting at (driftX, driftY) m/s —
// a toy wild-fire front for the paper's motivating scenario.
func PlumeField(center Point, amplitude, sigma, driftX, driftY float64) Field {
	return field.GaussianPlume{Center: center, Amplitude: amplitude, Sigma: sigma, Drift: geom.V(driftX, driftY)}
}

// Simulation configures one MobiQuery run. Construct with
// DefaultSimulation and override fields as needed.
type Simulation struct {
	// Seed makes the run reproducible.
	Seed int64

	// Nodes is the sensor count; RegionSide the square field edge (m).
	Nodes      int
	RegionSide float64

	// SleepPeriod is the PSM duty-cycle period (3-15 s in the paper);
	// nodes are awake for ActiveWindow at the start of each.
	SleepPeriod  time.Duration
	ActiveWindow time.Duration

	// Scheme is the prefetching strategy.
	Scheme Scheme

	// QueryRadius (Rq), Period, Freshness, and Lifetime define the
	// spatiotemporal query.
	QueryRadius float64
	Period      time.Duration
	Freshness   time.Duration
	Lifetime    time.Duration
	Aggregate   core.AggKind

	// SpeedMin/SpeedMax bound the user's speed; the course changes heading
	// every ChangeInterval for Duration.
	SpeedMin       float64
	SpeedMax       float64
	ChangeInterval time.Duration
	Duration       time.Duration

	// Profiler selects motion-profile generation; AdvanceTime is Ta for
	// the planner; GPSError the location error (m) for the GPS predictor.
	Profiler    Profiler
	AdvanceTime time.Duration
	GPSError    float64

	// Field is what the sensors measure.
	Field Field
}

// DefaultSimulation returns the paper's Section 6.1 settings: 200 nodes in
// 450 m x 450 m, 2 s query period, 1 s freshness, 150 m query radius, a
// walking user, 15 s sleep period, and just-in-time prefetching.
func DefaultSimulation() Simulation {
	sc := experiment.Default()
	return Simulation{
		Seed:           sc.Seed,
		Nodes:          sc.Nodes,
		RegionSide:     sc.RegionSide,
		SleepPeriod:    sc.SleepPeriod,
		ActiveWindow:   sc.ActiveWindow,
		Scheme:         sc.Scheme,
		QueryRadius:    sc.Spec.Radius,
		Period:         sc.Spec.Period,
		Freshness:      sc.Spec.Fresh,
		Lifetime:       sc.Spec.Lifetime,
		Aggregate:      sc.Spec.Agg,
		SpeedMin:       sc.SpeedMin,
		SpeedMax:       sc.SpeedMax,
		ChangeInterval: sc.ChangeInterval,
		Duration:       sc.Duration,
		Profiler:       sc.Profiler,
		AdvanceTime:    sc.AdvanceTime,
		GPSError:       sc.GPSError,
		Field:          sc.Field,
	}
}

// scenario converts the public configuration to the internal one.
func (s Simulation) scenario() experiment.Scenario {
	sc := experiment.Default()
	sc.Seed = s.Seed
	sc.Nodes = s.Nodes
	sc.RegionSide = s.RegionSide
	sc.SleepPeriod = s.SleepPeriod
	sc.ActiveWindow = s.ActiveWindow
	sc.Scheme = s.Scheme
	sc.Spec.Radius = s.QueryRadius
	sc.Spec.Period = s.Period
	sc.Spec.Fresh = s.Freshness
	sc.Spec.Lifetime = s.Lifetime
	sc.Spec.Agg = s.Aggregate
	sc.SpeedMin = s.SpeedMin
	sc.SpeedMax = s.SpeedMax
	sc.ChangeInterval = s.ChangeInterval
	sc.Duration = s.Duration
	sc.Profiler = s.Profiler
	sc.AdvanceTime = s.AdvanceTime
	sc.GPSError = s.GPSError
	sc.Field = s.Field
	return sc
}

// Validate reports configuration errors without running anything.
func (s Simulation) Validate() error { return s.scenario().Validate() }

// QueryResult is the outcome of one query period.
type QueryResult struct {
	// K is the 1-based period index; the result was due at Deadline.
	K        int
	Deadline time.Duration
	// Received and OnTime report delivery; Value is the aggregate under
	// the configured function and Contributors the number of distinct
	// in-area nodes whose readings reached the user.
	Received     bool
	OnTime       bool
	Value        float64
	Contributors int
	AreaNodes    int
	Fidelity     float64
	Success      bool
}

// Result summarizes a run.
type Result struct {
	// Queries holds one entry per query period.
	Queries []QueryResult
	// SuccessRatio is the fraction of periods delivered on time with
	// fidelity of at least 95% (the paper's headline metric).
	SuccessRatio float64
	// MeanFidelity averages fidelity across periods.
	MeanFidelity float64
	// PowerPerSleepingNode and PowerPerBackboneNode are mean radio power
	// draws in watts.
	PowerPerSleepingNode float64
	PowerPerBackboneNode float64
	// MaxPrefetchLength is the peak number of query trees built ahead of
	// the user (the paper's storage metric, equation 11/12).
	MaxPrefetchLength int
	// BackboneNodes counts the always-on CCP backbone.
	BackboneNodes int
}

// Run executes the simulation to completion. It panics on invalid
// configuration (check Validate first for error handling).
func Run(s Simulation) Result {
	sc := s.scenario()
	rr := experiment.Run(sc)
	out := Result{
		SuccessRatio:         rr.SuccessRatio,
		MeanFidelity:         rr.MeanFidelity,
		PowerPerSleepingNode: rr.PowerSleeper,
		PowerPerBackboneNode: rr.PowerBackbone,
		MaxPrefetchLength:    rr.MaxPrefetchLength,
		BackboneNodes:        rr.BackboneNodes,
		Queries:              make([]QueryResult, 0, len(rr.Records)),
	}
	for _, r := range rr.Records {
		out.Queries = append(out.Queries, QueryResult{
			K:            r.K,
			Deadline:     r.Deadline,
			Received:     r.Received,
			OnTime:       r.OnTime,
			Value:        r.Value,
			Contributors: r.Contributors,
			AreaNodes:    r.AreaNodes,
			Fidelity:     r.Fidelity,
			Success:      r.Success,
		})
	}
	return out
}

// SuccessThreshold is the fidelity cutoff used for SuccessRatio.
const SuccessThreshold = metrics.FidelityThreshold

// JITStorageBound returns the paper's equation (12) bound on the number of
// query trees held ahead of the user under just-in-time prefetching.
func JITStorageBound(sleepPeriod, freshness, period time.Duration) int {
	return analysis.StorageJIT(analysis.QueryParams{Period: period, Fresh: freshness, Sleep: sleepPeriod})
}

// WarmupBound returns the equation (16) bound on the warmup interval after
// a motion profile with advance time ta arrives, assuming the prefetch
// message travels much faster than the user.
func WarmupBound(sleepPeriod, freshness, period, ta time.Duration) time.Duration {
	q := analysis.QueryParams{Period: period, Fresh: freshness, Sleep: sleepPeriod}
	return analysis.WarmupInterval(q, ta, 4, 4000)
}

// TeamMember configures one user in a multi-user simulation. Each member
// issues an independent spatiotemporal query (the base Simulation's query
// parameters) while walking a straight line from Start at the given
// velocity, with an exact motion profile.
type TeamMember struct {
	// QueryID must be unique and non-zero.
	QueryID uint32
	// Scheme is the member's prefetching strategy.
	Scheme Scheme
	// Start is the member's initial position; VelocityX/Y its speed (m/s).
	Start                Point
	VelocityX, VelocityY float64
}

// RunTeam runs base's network with several concurrent mobile users and
// returns one Result per member, in order. The members share the sensor
// network, so their query traffic contends: the paper's storage and
// contention analysis (Section 5) is about exactly this load.
func RunTeam(base Simulation, members []TeamMember) []Result {
	sc := base.scenario()
	users := make([]experiment.UserSpec, len(members))
	for i, m := range members {
		users[i] = experiment.UserSpec{
			QueryID:  m.QueryID,
			Scheme:   m.Scheme,
			Start:    m.Start,
			Velocity: geom.V(m.VelocityX, m.VelocityY),
		}
	}
	rrs := experiment.RunMulti(sc, users)
	out := make([]Result, len(rrs))
	for i, rr := range rrs {
		res := Result{
			SuccessRatio:      rr.SuccessRatio,
			MeanFidelity:      rr.MeanFidelity,
			MaxPrefetchLength: rr.MaxPrefetchLength,
			BackboneNodes:     rr.BackboneNodes,
			Queries:           make([]QueryResult, 0, len(rr.Records)),
		}
		for _, r := range rr.Records {
			res.Queries = append(res.Queries, QueryResult{
				K:            r.K,
				Deadline:     r.Deadline,
				Received:     r.Received,
				OnTime:       r.OnTime,
				Value:        r.Value,
				Contributors: r.Contributors,
				AreaNodes:    r.AreaNodes,
				Fidelity:     r.Fidelity,
				Success:      r.Success,
			})
		}
		out[i] = res
	}
	return out
}
